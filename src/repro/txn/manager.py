"""Transaction lifecycle: begin / commit / abort, snapshots and GC horizon.

The manager owns the txid allocator, commit log, lock table and — optionally
— the WAL.  Engines attach *undo actions* to a running transaction (e.g.
"restore this VIDmap entrypoint"); on abort the actions run in reverse order,
after which the versions the transaction created are unreachable garbage for
the page GC.  The *GC horizon* (:meth:`TransactionManager.horizon_txid`) is
the largest txid below which every transaction has finished — versions
superseded before the horizon are invisible to every current and future
snapshot and may be reclaimed.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable

from repro.common.errors import TxnStateError
from repro.txn.commitlog import CommitLog, TxnState
from repro.txn.ids import TxidAllocator
from repro.txn.locks import LockTable
from repro.txn.snapshot import Snapshot
from repro.wal.log import WriteAheadLog


class TxnPhase(Enum):
    """Lifecycle phase of a transaction handle."""

    ACTIVE = "active"
    PREPARED = "prepared"
    COMMITTED = "committed"
    ABORTED = "aborted"


@dataclass
class Transaction:
    """A running transaction: identity, snapshot and rollback actions."""

    txid: int
    snapshot: Snapshot
    phase: TxnPhase = TxnPhase.ACTIVE
    serializable: bool = False
    _undo: list[Callable[[], None]] = field(default_factory=list)
    reads: int = 0
    writes: int = 0
    #: coordinator's global transaction id once prepared (2PC participant)
    gtxid: int | None = None

    def register_undo(self, action: Callable[[], None]) -> None:
        """Add a rollback action (run in reverse order on abort)."""
        self._assert_active()
        self._undo.append(action)

    def _assert_active(self) -> None:
        if self.phase is not TxnPhase.ACTIVE:
            raise TxnStateError(
                f"txn {self.txid} is {self.phase.value}, expected active")


class TransactionManager:
    """Coordinates snapshots, commit state, locks and undo.

    Thread-safe: an internal mutex makes snapshot acquisition and
    commit-log publication atomic, so concurrent workers serialise on a
    well-defined commit point.  The mutex is the *txn mutex* in the lock
    hierarchy (``docs/CONCURRENCY.md``): it is acquired before any stripe
    latch or WAL mutex and never while holding one, and it is held only
    for in-memory bookkeeping — WAL forces and undo actions run outside
    it.
    """

    def __init__(self, wal: WriteAheadLog | None = None) -> None:
        from repro.txn.ssi import SsiTracker

        self._allocator = TxidAllocator()
        self.clog = CommitLog()
        self.locks = LockTable()
        self.wal = wal
        self.ssi = SsiTracker()
        self._active: dict[int, Transaction] = {}
        #: prepared (in-doubt) transactions, keyed by local txid — they
        #: stay in ``_active`` too, which is what keeps the GC horizon and
        #: checkpoint anchor pinned below their versions
        self.prepared: dict[int, Transaction] = {}
        self.commits = 0
        self.aborts = 0
        self.prepares = 0
        self.prepared_commits = 0
        self.prepared_aborts = 0
        #: transactions begun with an externally supplied read timestamp
        self.begin_at = 0
        # Plain (non-reentrant) mutex: no path acquires it twice, and the
        # begin/commit fast paths are hot enough for the difference to show.
        self._mu = threading.Lock()

    # -- lifecycle ---------------------------------------------------------------

    def begin(self, serializable: bool = False,
              at_ts: int | None = None) -> Transaction:
        """Start a transaction with a fresh snapshot.

        Txid allocation, clog registration and the concurrent-set capture
        happen atomically: a snapshot can never miss a transaction that
        allocated its txid first but had not yet registered as active.

        ``serializable=True`` upgrades the transaction from plain SI to
        SSI: its reads and writes are tracked for rw-antidependencies and
        it may abort with a serialization failure even without a
        write-write conflict (see :mod:`repro.txn.ssi`).

        ``at_ts`` pins the snapshot to an externally supplied read
        timestamp instead of "now".  The timestamp must be *closed*
        (``at_ts ≤`` :meth:`closed_ts` after ratcheting the txid space
        forward to ``at_ts``): every transaction at or below it has
        reached its durable fate, so the snapshot needs no concurrent set
        and its commit-log verdicts are frozen.  The cluster router uses
        this to give one global read timestamp to every shard.  A pinned
        transaction may still write — first-updater-wins aborts it if it
        touches an item with a newer version than its snapshot sees.
        ``at_ts`` and ``serializable`` are mutually exclusive: SSI
        tracking is defined over overlapping fresh snapshots.
        """
        if at_ts is not None and serializable:
            raise TxnStateError(
                "serializable transactions cannot be pinned to at_ts")
        with self._mu:
            if at_ts is not None:
                if at_ts < 0:
                    raise TxnStateError(f"at_ts must be >= 0, got {at_ts}")
                # Ratchet: a router-issued timestamp pushes a quiet txid
                # space forward so this shard's snapshots and the cluster's
                # stay comparable (mirrors SimClock.advance_to).
                self._allocator.advance_to(at_ts)
                closed = self._closed_ts_locked()
                if at_ts > closed:
                    raise TxnStateError(
                        f"at_ts {at_ts} is above the closed timestamp "
                        f"{closed}: an in-flight transaction below it "
                        f"could still commit")
            txid = self._allocator.allocate()
            self.clog.register(txid)
            if at_ts is None:
                snapshot = Snapshot(txid=txid,
                                    concurrent=frozenset(self._active.keys()))
            else:
                # Everything ≤ at_ts is settled and everything active is
                # > at_ts, so the concurrent set is provably empty.
                snapshot = Snapshot(txid=txid, concurrent=frozenset(),
                                    read_ts=at_ts)
                self.begin_at += 1
            txn = Transaction(txid=txid, snapshot=snapshot,
                              serializable=serializable)
            self._active[txid] = txn
            if serializable:
                self.ssi.register(txn)
            return txn

    def commit(self, txn: Transaction) -> None:
        """Commit: WAL force (durability), then the atomic commit point.

        The WAL commit record is forced *before* the clog flips — a
        transaction becomes visible only once durable (concurrent
        ``log_commit`` calls batch into one force; see
        :meth:`repro.wal.log.WriteAheadLog.log_commit`).  The clog flip,
        active-set removal and counter bump then happen under the txn
        mutex: that is the commit point concurrent snapshots serialise
        against.  Lock release comes after the commit point, so a lock
        waiter that wakes up always observes the holder's final state.
        """
        txn._assert_active()
        if txn.serializable:
            # a transaction doomed by SSI victim selection dies here at
            # the latest — before its COMMIT record can become durable
            self.ssi.before_commit(txn)
        if self.wal is not None and (txn.writes or txn._undo):
            # read-only transactions leave no WAL trace at all — nothing
            # to redo, no force burned, and a replica's local reads never
            # leak into the stream its own cascading hub ships downstream
            self.wal.log_commit(txn.txid)
        with self._mu:
            self.clog.set_committed(txn.txid)
            txn.phase = TxnPhase.COMMITTED
            del self._active[txn.txid]
            self.commits += 1
        self._finish(txn)

    def abort(self, txn: Transaction) -> None:
        """Abort: run undo actions in reverse, clog flip, lock release.

        Undo runs *before* the clog flip and before lock release: the
        aborting transaction still holds its item locks, so no concurrent
        updater can observe a half-rolled-back chain.
        """
        txn._assert_active()
        for action in reversed(txn._undo):
            action()
        with self._mu:
            self.clog.set_aborted(txn.txid)
            txn.phase = TxnPhase.ABORTED
            del self._active[txn.txid]
            self.aborts += 1
        if self.wal is not None:
            self.wal.log_abort(txn.txid)
        self._finish(txn)

    # -- two-phase commit ---------------------------------------------------------

    def prepare(self, txn: Transaction, gtxid: int) -> None:
        """Phase 1: force the prepare record, then flip to PREPARED.

        Mirrors :meth:`commit`'s durability-before-publication order: the
        WAL prepare is forced *before* the clog flips, so an acknowledged
        "prepared" vote always survives a crash.  The transaction stays in
        ``_active`` (pinning the GC horizon and checkpoint anchor below
        its versions) and keeps its item locks and undo chain — the
        coordinator's decision releases them via
        :meth:`commit_prepared` / :meth:`abort_prepared`.
        """
        txn._assert_active()
        if self.wal is not None:
            self.wal.log_prepare(txn.txid, gtxid)
        with self._mu:
            self.clog.set_prepared(txn.txid)
            txn.phase = TxnPhase.PREPARED
            txn.gtxid = gtxid
            self.prepared[txn.txid] = txn
            self.prepares += 1

    def commit_prepared(self, txid: int) -> bool:
        """Phase 2 (commit decision): finalize a prepared transaction.

        Idempotent: returns False if the transaction already reached its
        COMMITTED fate (a retried decision delivery), True if this call
        performed the commit.  A transaction that is neither prepared nor
        committed raises — delivering a commit decision to an aborted
        participant is a coordinator bug.
        """
        with self._mu:
            state = self.clog.state_of(txid)
            if state is TxnState.COMMITTED:
                return False
            if state is not TxnState.PREPARED:
                raise TxnStateError(
                    f"txid {txid} is {state.value}, cannot commit-prepared")
            txn = self.prepared.pop(txid, None)
        if txn is None:
            # another finalizer holds the handle mid-flight; treat as
            # a duplicate delivery
            return False
        if self.wal is not None:
            self.wal.log_commit(txid)
        with self._mu:
            self.clog.set_committed(txid)
            txn.phase = TxnPhase.COMMITTED
            del self._active[txid]
            self.commits += 1
            self.prepared_commits += 1
        self._finish(txn)
        return True

    def abort_prepared(self, txid: int) -> bool:
        """Phase 2 (abort decision / presumed abort): roll back a prepare.

        Idempotent like :meth:`commit_prepared`; rolling back runs the
        undo chain in reverse while the item locks are still held, exactly
        as :meth:`abort` does.  The abort record is not forced — if it is
        lost to a crash the transaction comes back in-doubt and presumed
        abort re-resolves it the same way.
        """
        with self._mu:
            state = self.clog.state_of(txid)
            if state is TxnState.ABORTED:
                return False
            if state is not TxnState.PREPARED:
                raise TxnStateError(
                    f"txid {txid} is {state.value}, cannot abort-prepared")
            txn = self.prepared.pop(txid, None)
        if txn is None:
            return False
        for action in reversed(txn._undo):
            action()
        with self._mu:
            self.clog.set_aborted(txid)
            txn.phase = TxnPhase.ABORTED
            del self._active[txid]
            self.aborts += 1
            self.prepared_aborts += 1
        if self.wal is not None:
            self.wal.log_abort(txid)
        self._finish(txn)
        return True

    def in_doubt(self) -> list[tuple[int, int]]:
        """``(local txid, global txid)`` of every prepared transaction."""
        with self._mu:
            return [(t.txid, t.gtxid if t.gtxid is not None else -1)
                    for t in self.prepared.values()]

    def _finish(self, txn: Transaction) -> None:
        txn._undo.clear()
        self.locks.release_all(txn.txid)
        if txn.serializable:
            self.ssi.on_finish(txn)

    # -- introspection --------------------------------------------------------------

    @property
    def active_txids(self) -> set[int]:
        """Txids currently running."""
        with self._mu:
            return set(self._active.keys())

    def active_count(self) -> int:
        """Number of running transactions."""
        return len(self._active)

    def counters(self) -> tuple[int, int, int]:
        """(commits, aborts, active) read atomically under the txn mutex.

        ``SystemSnapshot`` uses this so its transaction numbers are a
        consistent cut even while workers are committing.
        """
        with self._mu:
            return self.commits, self.aborts, len(self._active)

    def closed_ts(self) -> int:
        """The closed-timestamp watermark: the highest timestamp below
        which no in-flight transaction can still commit.

        Every txid ``≤ closed_ts`` has reached its final commit-log fate,
        so a snapshot pinned at ``ts ≤ closed_ts`` is provably stable —
        its visibility verdicts can never change.  The watermark is held
        down by *everything* that could still commit below it: active
        transactions (including those inside group-commit's WAL force,
        which leave ``_active`` only at the clog flip) and 2PC PREPARED
        participants (which stay in ``_active`` until the coordinator's
        decision is durable, and are re-registered there by recovery
        after a crash).  It is monotone because txids only grow.
        """
        with self._mu:
            return self._closed_ts_locked()

    def _closed_ts_locked(self) -> int:
        if self._active:
            return min(self._active) - 1
        return self._allocator.last_allocated

    def advance_to(self, ts: int) -> int:
        """Ratchet the txid space so future txids are ``> ts``; return the
        (possibly advanced) closed timestamp.

        The cluster router calls this on every shard while refreshing its
        global read timestamp: a quiet shard — whose watermark would
        otherwise lag arbitrarily far behind its peers and drag the
        cluster-wide minimum into the past — jumps forward to the busiest
        shard's watermark.  A shard with in-flight transactions below
        ``ts`` keeps its lower watermark (those could still commit), which
        the router's min() then correctly reflects.
        """
        with self._mu:
            self._allocator.advance_to(ts)
            return self._closed_ts_locked()

    def horizon_txid(self) -> int:
        """GC horizon: txids below it are visible to every live snapshot.

        A creation timestamp ``ts < horizon`` is (a) committed-or-aborted,
        and (b) outside every active snapshot's concurrent set — so a
        committed one is visible to every present and future snapshot.
        This is PostgreSQL's *RecentGlobalXmin*: the minimum over all
        active transactions of their snapshot xmin (their own txid and
        everything they saw as still running when they started).  A
        transaction pinned to ``at_ts`` contributes ``read_ts + 1``: it
        can see any committed version at or below its read timestamp, so
        versions superseded above that must survive (for fresh snapshots
        ``read_ts + 1 == txid + 1`` and the term is inert).
        """
        with self._mu:
            if not self._active:
                return self._allocator.last_allocated + 1
            return min(min({txn.txid, txn.snapshot.read_ts + 1,
                            *txn.snapshot.concurrent})
                       for txn in self._active.values())

    def is_committed(self, txid: int) -> bool:
        """Convenience passthrough to the commit log."""
        return self.clog.is_committed(txid)

    def state_of(self, txid: int) -> TxnState:
        """Convenience passthrough to the commit log."""
        return self.clog.state_of(txid)
