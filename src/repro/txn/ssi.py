"""Serializable Snapshot Isolation (SSI) — optional isolation level.

Plain SI permits *write skew*; the paper points to Cahill et al. (SIGMOD
2008) and the PostgreSQL implementation by Ports & Grittner (VLDB 2012) for
the fix: track read/write **rw-antidependencies** between concurrent
snapshot transactions and abort one of them whenever a transaction ends up
with both an inbound and an outbound rw-edge (the *pivot* of a dangerous
structure); every SI anomaly contains such a pivot.

This implementation follows the Cahill design:

* every read by a serializable transaction takes a **SIREAD** marker on the
  data item (``(relation_id, item)`` — the same identity the engines lock);
* a write checks SIREAD markers of concurrent serializable transactions and
  raises the rw-edges ``reader --rw--> writer``; a read checks writes of
  concurrent transactions for the converse edge;
* when a transaction ends up with both an inbound and an outbound rw-edge
  it is the pivot of a dangerous structure and somebody must die: the
  pivot if it is still active, else the still-active neighbour;
* the victim is marked **doomed** and the serialization failure is raised
  in the *victim's own* next operation or commit — never in whichever
  innocent transaction happened to complete the structure (aborting the
  bystander would leave the pivot running and the anomaly live);
* edges contributed by an aborted transaction are dropped when it
  finishes, so its half-built structures cannot doom survivors later;
* markers of committed transactions are retained until no running
  serializable transaction overlaps them (they can still form edges).

Like the original paper (and unlike full PostgreSQL SSI) this tracks item
granularity only — predicate (phantom) protection via index-range locks is
out of scope and documented as such (see docs/CONCURRENCY.md).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.common.errors import SerializationError
from repro.txn.manager import Transaction, TxnPhase


@dataclass
class _SsiState:
    """Per-transaction dependency bookkeeping.

    Edges are kept as txid *sets* rather than the two booleans of the
    original sketch: knowing **who** contributed an edge is what lets an
    aborted neighbour's edges be withdrawn, and a flag alone cannot be
    un-set when one of several contributors goes away.
    """

    txn: Transaction
    reads: set = field(default_factory=set)
    writes: set = field(default_factory=set)
    #: txids with an rw-edge INTO me (they read what I overwrote)
    in_edges: set = field(default_factory=set)
    #: txids I have an rw-edge OUT to (I read what they overwrote)
    out_edges: set = field(default_factory=set)
    #: sentenced to death by victim selection; the sentence is executed
    #: (SerializationError) by this transaction's own next op or commit
    doomed: bool = False

    @property
    def in_conflict(self) -> bool:
        return bool(self.in_edges)

    @property
    def out_conflict(self) -> bool:
        return bool(self.out_edges)

    @property
    def finished(self) -> bool:
        return self.txn.phase is not TxnPhase.ACTIVE

    @property
    def committed(self) -> bool:
        return self.txn.phase is TxnPhase.COMMITTED


class SsiTracker:
    """Tracks rw-antidependencies among serializable transactions.

    Thread-safe: one internal mutex covers the whole dependency graph —
    edges connect arbitrary transaction pairs, so finer locking would buy
    nothing.  The mutex is a leaf in the lock hierarchy: no SSI method
    calls back into the manager, engines or WAL.
    """

    def __init__(self) -> None:
        self._states: dict[int, _SsiState] = {}
        self.aborts_prevented_anomalies = 0
        self._mu = threading.RLock()

    # -- lifecycle ---------------------------------------------------------------

    def register(self, txn: Transaction) -> None:
        """Start tracking a serializable transaction."""
        with self._mu:
            self._states[txn.txid] = _SsiState(txn=txn)

    def is_tracked(self, txid: int) -> bool:
        """Whether the txid belongs to a tracked serializable txn."""
        return txid in self._states

    def before_commit(self, txn: Transaction) -> None:
        """Commit-time gate: a doomed transaction dies here at the latest.

        Called by the transaction manager *before* the COMMIT record is
        logged, so a doomed transaction can never become durable.
        """
        with self._mu:
            state = self._states.get(txn.txid)
            if state is not None and state.doomed:
                raise SerializationError(
                    f"txn {txn.txid}: pivot of a dangerous "
                    "rw-antidependency structure; aborting at commit to "
                    "preserve serializability")

    def on_finish(self, txn: Transaction) -> None:
        """Called after commit/abort: drop markers nobody can conflict with.

        A committed transaction's SIREAD markers must outlive it while any
        running serializable transaction overlaps it.  An *aborted*
        transaction never committed anything anybody could depend on: its
        state is dropped immediately and — crucially — the edges it
        contributed are withdrawn from every survivor, so a half-built
        dangerous structure cannot cause spurious aborts later.
        """
        with self._mu:
            state = self._states.get(txn.txid)
            if state is not None and txn.phase is TxnPhase.ABORTED:
                del self._states[txn.txid]
                for other in self._states.values():
                    other.in_edges.discard(txn.txid)
                    other.out_edges.discard(txn.txid)
            self._garbage_collect()

    def _garbage_collect(self) -> None:
        active = [s for s in self._states.values() if not s.finished]
        keep: set[int] = {s.txn.txid for s in active}
        for state in self._states.values():
            if not state.committed:
                continue
            if any(a.txn.snapshot.overlaps(state.txn.snapshot)
                   for a in active):
                keep.add(state.txn.txid)
        self._states = {txid: s for txid, s in self._states.items()
                        if txid in keep}

    # -- dependency hooks ----------------------------------------------------------

    def on_read(self, txn: Transaction, key: object) -> None:
        """Record a read and raise the ``me --rw--> writer`` edges."""
        with self._mu:
            me = self._states.get(txn.txid)
            if me is None:
                return
            self._execute_doom(me)
            me.reads.add(key)
            for other in list(self._states.values()):
                if other.txn.txid == txn.txid or key not in other.writes:
                    continue
                if other.txn.phase is TxnPhase.ABORTED:
                    continue
                if not txn.snapshot.overlaps(other.txn.snapshot):
                    continue
                # I read a version that `other` concurrently overwrote:
                # me --rw--> other
                self._raise_edge(reader=me, writer=other, acting=me)
            self._execute_doom(me)

    def on_write(self, txn: Transaction, key: object) -> None:
        """Record a write and raise the ``reader --rw--> me`` edges."""
        with self._mu:
            me = self._states.get(txn.txid)
            if me is None:
                return
            self._execute_doom(me)
            me.writes.add(key)
            for other in list(self._states.values()):
                if other.txn.txid == txn.txid or key not in other.reads:
                    continue
                if other.txn.phase is TxnPhase.ABORTED:
                    continue
                if not txn.snapshot.overlaps(other.txn.snapshot):
                    continue
                # `other` read the version I am overwriting: other --rw--> me
                self._raise_edge(reader=other, writer=me, acting=me)
            self._execute_doom(me)

    def _raise_edge(self, reader: _SsiState, writer: _SsiState,
                    acting: _SsiState) -> None:
        reader.out_edges.add(writer.txn.txid)
        writer.in_edges.add(reader.txn.txid)
        for state, other in ((reader, writer), (writer, reader)):
            if not (state.in_conflict and state.out_conflict):
                continue
            # `state` is the pivot of a dangerous structure.  Doom it if
            # it is still active; if it already committed, the structure
            # can only be broken by killing the still-active neighbour.
            victim = state if not state.finished else (
                other if not other.finished else None)
            if victim is not None and not victim.doomed:
                victim.doomed = True
                self.aborts_prevented_anomalies += 1
        # the sentence is executed in the victim's own thread: here only
        # if the acting transaction itself was selected (``_execute_doom``
        # at the call sites covers victims doomed by *other* threads)

    def _execute_doom(self, state: _SsiState) -> None:
        if state.doomed:
            raise SerializationError(
                f"txn {state.txn.txid}: pivot of a dangerous "
                "rw-antidependency structure detected; aborting to "
                "preserve serializability")
