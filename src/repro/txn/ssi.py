"""Serializable Snapshot Isolation (SSI) — optional isolation level.

Plain SI permits *write skew*; the paper points to Cahill et al. (SIGMOD
2008) and the PostgreSQL implementation by Ports & Grittner (VLDB 2012) for
the fix: track read/write **rw-antidependencies** between concurrent
snapshot transactions and abort one of them whenever a transaction ends up
with both an inbound and an outbound rw-edge (the *pivot* of a dangerous
structure); every SI anomaly contains such a pivot.

This implementation follows the Cahill design:

* every read by a serializable transaction takes a **SIREAD** marker on the
  data item (``(relation_id, item)`` — the same identity the engines lock);
* a write checks SIREAD markers of concurrent serializable transactions and
  raises the rw-edges ``reader --rw--> writer``; a read checks writes of
  concurrent transactions for the converse edge;
* a transaction observing itself with both ``in_conflict`` and
  ``out_conflict`` aborts with a serialization failure;
* markers of committed transactions are retained until no running
  serializable transaction overlaps them (they can still form edges).

Like the original paper (and unlike full PostgreSQL SSI) this tracks item
granularity only — predicate (phantom) protection via index-range locks is
out of scope and documented as such.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.common.errors import SerializationError
from repro.txn.manager import Transaction, TxnPhase


@dataclass
class _SsiState:
    """Per-transaction dependency bookkeeping."""

    txn: Transaction
    reads: set = field(default_factory=set)
    writes: set = field(default_factory=set)
    in_conflict: bool = False    # someone has an rw-edge INTO me
    out_conflict: bool = False   # I have an rw-edge OUT to someone

    @property
    def finished(self) -> bool:
        return self.txn.phase is not TxnPhase.ACTIVE

    @property
    def committed(self) -> bool:
        return self.txn.phase is TxnPhase.COMMITTED


class SsiTracker:
    """Tracks rw-antidependencies among serializable transactions.

    Thread-safe: one internal mutex covers the whole dependency graph —
    edges connect arbitrary transaction pairs, so finer locking would buy
    nothing.  The mutex is a leaf in the lock hierarchy: no SSI method
    calls back into the manager, engines or WAL.
    """

    def __init__(self) -> None:
        self._states: dict[int, _SsiState] = {}
        self.aborts_prevented_anomalies = 0
        self._mu = threading.RLock()

    # -- lifecycle ---------------------------------------------------------------

    def register(self, txn: Transaction) -> None:
        """Start tracking a serializable transaction."""
        with self._mu:
            self._states[txn.txid] = _SsiState(txn=txn)

    def is_tracked(self, txid: int) -> bool:
        """Whether the txid belongs to a tracked serializable txn."""
        return txid in self._states

    def on_finish(self, txn: Transaction) -> None:
        """Called after commit/abort: drop markers nobody can conflict with.

        A committed transaction's SIREAD markers must outlive it while any
        running serializable transaction overlaps it.
        """
        with self._mu:
            self._garbage_collect()

    def _garbage_collect(self) -> None:
        active = [s for s in self._states.values() if not s.finished]
        keep: set[int] = {s.txn.txid for s in active}
        for state in self._states.values():
            if not state.committed:
                continue
            if any(a.txn.snapshot.overlaps(state.txn.snapshot)
                   for a in active):
                keep.add(state.txn.txid)
        self._states = {txid: s for txid, s in self._states.items()
                        if txid in keep}

    # -- dependency hooks ----------------------------------------------------------

    def on_read(self, txn: Transaction, key: object) -> None:
        """Record a read and raise the ``me --rw--> writer`` edges."""
        with self._mu:
            self._on_read(txn, key)

    def _on_read(self, txn: Transaction, key: object) -> None:
        me = self._states.get(txn.txid)
        if me is None:
            return
        me.reads.add(key)
        for other in list(self._states.values()):
            if other.txn.txid == txn.txid or key not in other.writes:
                continue
            if other.txn.phase is TxnPhase.ABORTED:
                continue
            if not txn.snapshot.overlaps(other.txn.snapshot):
                continue
            # I read a version that `other` concurrently overwrote:
            # me --rw--> other
            self._raise_edge(reader=me, writer=other)

    def on_write(self, txn: Transaction, key: object) -> None:
        """Record a write and raise the ``reader --rw--> me`` edges."""
        with self._mu:
            self._on_write(txn, key)

    def _on_write(self, txn: Transaction, key: object) -> None:
        me = self._states.get(txn.txid)
        if me is None:
            return
        me.writes.add(key)
        for other in list(self._states.values()):
            if other.txn.txid == txn.txid or key not in other.reads:
                continue
            if other.txn.phase is TxnPhase.ABORTED:
                continue
            if not txn.snapshot.overlaps(other.txn.snapshot):
                continue
            # `other` read the version I am overwriting: other --rw--> me
            self._raise_edge(reader=other, writer=me)

    def _raise_edge(self, reader: _SsiState, writer: _SsiState) -> None:
        reader.out_conflict = True
        writer.in_conflict = True
        for state, other in ((reader, writer), (writer, reader)):
            if not (state.in_conflict and state.out_conflict):
                continue
            # `state` is the pivot of a dangerous structure.  Abort it if
            # it is still active; if it already committed, the structure
            # can only be broken by killing the still-active neighbour.
            victim = state if not state.finished else (
                other if not other.finished else None)
            if victim is not None:
                self._abort_victim(victim)

    def _abort_victim(self, victim: _SsiState) -> None:
        self.aborts_prevented_anomalies += 1
        raise SerializationError(
            f"txn {victim.txn.txid}: dangerous rw-antidependency structure "
            "detected; aborting to preserve serializability")
