"""Exhibit F5: tolerable load — how much offered load stays responsive.

The paper's conclusion claims a "higher amount of tolerable load" (and the
HDD section: "SI stays responsive below 30 WHs; SIAS-Chains provides a
responsive system with up to 75 WHs").  This exhibit sweeps *offered load*
directly: a growing number of think-time-limited clients submit the
standard mix against a fixed buffer-pressured database, and each engine's
achieved throughput and p90 response time are recorded per load level.

The *tolerable load* of an engine is the highest client count whose p90
response time stays under a threshold (default 25 ms of simulated time).
Expected shape: both engines track the offered load while unsaturated;
SI saturates earlier — its response times blow past the threshold at a
client count where SIAS-V is still flat.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common import units
from repro.db.database import EngineKind
from repro.experiments import harness
from repro.experiments.render import format_table
from repro.workload.driver import DriverConfig
from repro.workload.tpcc_schema import TpccScale


@dataclass
class LoadPoint:
    """Both engines at one offered-load level."""

    clients: int
    sias_notpm: float
    si_notpm: float
    sias_p90_sec: float
    si_p90_sec: float


@dataclass
class TolerableLoadResult:
    """The full sweep plus the per-engine saturation points."""

    points: list[LoadPoint]
    threshold_sec: float

    @property
    def rows(self) -> list[list[object]]:
        """Table rows."""
        return [[p.clients, round(p.sias_notpm), round(p.si_notpm),
                 round(p.sias_p90_sec * 1000, 1),
                 round(p.si_p90_sec * 1000, 1)]
                for p in self.points]

    def table(self) -> str:
        """Render the sweep."""
        return format_table(
            f"F5 - tolerable load (p90 threshold "
            f"{self.threshold_sec * 1000:.0f} ms)",
            ["clients", "SIAS NOTPM", "SI NOTPM", "SIAS p90 (ms)",
             "SI p90 (ms)"],
            self.rows)

    def tolerable(self, engine: str) -> int:
        """Highest swept client count still under the p90 threshold."""
        best = 0
        for point in self.points:
            p90 = point.sias_p90_sec if engine == "sias" else point.si_p90_sec
            if p90 <= self.threshold_sec:
                best = max(best, point.clients)
        return best


def run(warehouses: int = 8,
        client_counts: tuple[int, ...] = (4, 8, 16, 24),
        think_time_usec: int = 20 * units.MSEC,
        duration_usec: int = 10 * units.SEC,
        threshold_sec: float = 0.025,
        pool_pages: int = 96,
        scale: TpccScale | None = None,
        seed: int = 42) -> TolerableLoadResult:
    """Sweep offered load on a buffer-pressured single SSD."""
    points: list[LoadPoint] = []
    for clients in client_counts:
        driver_config = DriverConfig(
            clients=clients, think_time_usec=think_time_usec,
            maintenance_interval_usec=5 * units.SEC)
        sias = harness.run_tpcc(EngineKind.SIASV,
                                harness.ssd_single(pool_pages=pool_pages),
                                warehouses, duration_usec, scale=scale,
                                driver_config=driver_config, seed=seed)
        si = harness.run_tpcc(EngineKind.SI,
                              harness.ssd_single(pool_pages=pool_pages),
                              warehouses, duration_usec, scale=scale,
                              driver_config=driver_config, seed=seed)
        points.append(LoadPoint(
            clients=clients,
            sias_notpm=sias.notpm,
            si_notpm=si.notpm,
            sias_p90_sec=sias.metrics.response_sec(0.90),
            si_p90_sec=si.metrics.response_sec(0.90),
        ))
    return TolerableLoadResult(points=points, threshold_sec=threshold_sec)
