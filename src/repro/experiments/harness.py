"""Shared experiment machinery: system setups, measured runs, result rows.

Every exhibit in the paper maps to a runner module in this package; they all
build databases through :func:`build_database` so the two engines always run
on byte-identical substrates, and they all measure through
:class:`MeasuredRun` so device counters cover only the measurement window
(the loader's I/O is excluded, exactly like attaching ``blktrace`` after the
database is populated).

The three evaluated hardware setups are modelled as :class:`SystemSetup`
presets:

* ``ssd_raid2`` — two SSDs striped, small buffer pool (the paper's 4 GB
  Core2Duo box, scaled to the simulator's dataset sizes),
* ``ssd_raid6`` — six SSDs striped, large buffer pool (the "Sylt" server),
* ``hdd`` — the single 7200 rpm disk.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.common import units
from repro.common.clock import SimClock
from repro.common.config import (
    BufferConfig,
    FlashConfig,
    FlushThreshold,
    HddConfig,
    SystemConfig,
)
from repro.db.database import Database, EngineKind
from repro.storage.device import BlockDevice, DeviceStats
from repro.storage.flash import FlashDevice
from repro.storage.hdd import HddDevice
from repro.storage.raid import Raid0Device
from repro.storage.trace import TraceRecorder
from repro.workload.driver import DriverConfig, TpccDriver
from repro.workload.metrics import Metrics
from repro.workload.tpcc_data import TpccLoader
from repro.workload.tpcc_schema import TpccScale, create_tpcc_tables


@dataclass(frozen=True)
class SystemSetup:
    """One evaluated hardware configuration."""

    name: str
    kind: str                    # "flash" or "hdd"
    members: int                 # striped devices (1 = no RAID)
    config: SystemConfig

    def with_config(self, config: SystemConfig) -> "SystemSetup":
        """Copy with another system config."""
        return replace(self, config=config)


def _flash_config(capacity_gib: int = 4) -> FlashConfig:
    return FlashConfig(capacity_bytes=capacity_gib * units.GIB)


def ssd_single(pool_pages: int = 1024) -> SystemSetup:
    """One SSD (used by the blocktrace and ablation exhibits)."""
    return SystemSetup(
        name="ssd", kind="flash", members=1,
        config=SystemConfig(flash=_flash_config(),
                            buffer=BufferConfig(pool_pages=pool_pages)))


def ssd_raid2(pool_pages: int = 192) -> SystemSetup:
    """Two-SSD stripe with a small buffer pool (Figure: 2-SSD RAID)."""
    return SystemSetup(
        name="ssd-raid2", kind="flash", members=2,
        config=SystemConfig(flash=_flash_config(2),
                            buffer=BufferConfig(pool_pages=pool_pages)))


def ssd_raid6(pool_pages: int = 4096) -> SystemSetup:
    """Six-SSD stripe with a large buffer pool (Figure: 6-SSD RAID)."""
    return SystemSetup(
        name="ssd-raid6", kind="flash", members=6,
        config=SystemConfig(flash=_flash_config(2),
                            buffer=BufferConfig(pool_pages=pool_pages)))


def hdd_single(pool_pages: int = 512) -> SystemSetup:
    """One 7200 rpm disk (Table: TPC-C on HDD)."""
    return SystemSetup(
        name="hdd", kind="hdd", members=1,
        config=SystemConfig(hdd=HddConfig(),
                            buffer=BufferConfig(pool_pages=pool_pages)))


def build_device(setup: SystemSetup, clock: SimClock,
                 trace: TraceRecorder | None,
                 name_prefix: str) -> BlockDevice:
    """Construct the (possibly striped) device of a setup."""
    if setup.kind == "flash":
        if setup.members == 1:
            return FlashDevice(clock, setup.config.flash, trace=trace,
                               name=f"{name_prefix}-ssd")
        members = [FlashDevice(clock, setup.config.flash,
                               name=f"{name_prefix}-ssd{i}")
                   for i in range(setup.members)]
        return Raid0Device(members, trace=trace,
                           name=f"{name_prefix}-raid{setup.members}")
    if setup.members != 1:
        raise ValueError("HDD setups are single-device")
    return HddDevice(clock, setup.config.hdd, trace=trace,
                     name=f"{name_prefix}-hdd")


def build_database(engine: EngineKind, setup: SystemSetup,
                   trace: TraceRecorder | None = None,
                   threshold: FlushThreshold | None = None) -> Database:
    """A fresh database of one engine kind on one hardware setup."""
    config = setup.config
    if threshold is not None:
        config = config.with_engine(flush_threshold=threshold)
    clock = SimClock()
    data = build_device(setup, clock, trace, "data")
    wal = build_device(setup, clock, None, "wal")
    return Database(engine, data, wal, config)


@dataclass
class MeasuredRun:
    """One loaded-then-measured workload run."""

    engine: EngineKind
    setup: SystemSetup
    warehouses: int
    metrics: Metrics
    device_delta: DeviceStats     # data-device I/O inside the window only
    wal_delta: DeviceStats
    space_bytes: int
    db: Database
    driver: TpccDriver

    @property
    def write_mib(self) -> float:
        """Data-device write volume during the measurement window."""
        return units.mib(self.device_delta.write_bytes)

    @property
    def notpm(self) -> float:
        """NewOrder throughput during the window."""
        return self.metrics.notpm()


def run_tpcc(engine: EngineKind, setup: SystemSetup, warehouses: int,
             duration_usec: int, scale: TpccScale | None = None,
             driver_config: DriverConfig | None = None,
             trace: TraceRecorder | None = None,
             threshold: FlushThreshold | None = None,
             num_transactions: int | None = None,
             seed: int = 42) -> MeasuredRun:
    """Load ``warehouses`` and run the mix for ``duration_usec`` sim-time.

    Device counters and the optional blocktrace cover only the measurement
    window: the loader's I/O is cut away by snapshotting counters (and
    clearing the trace) after the load, mirroring how the paper attached
    blktrace to an already-populated DBT2 database.

    If ``num_transactions`` is given, the run finishes after that many
    transaction attempts instead of after ``duration_usec`` — the fixed-work
    mode the write-volume comparisons use (the engines' throughputs differ,
    so fixed-time windows would compare unequal amounts of work).
    """
    scale = scale or TpccScale()
    db = build_database(engine, setup, trace=trace, threshold=threshold)
    create_tpcc_tables(db)
    TpccLoader(db, scale, seed=seed).load(warehouses)
    db.maintenance()  # start the window with a clean version store
    before = db.data_device.stats.snapshot()
    wal_before = db.wal.device.stats.snapshot()
    if trace is not None:
        trace.clear()
    driver = TpccDriver(db, warehouses, scale,
                        config=driver_config or DriverConfig(), seed=seed)
    if num_transactions is not None:
        metrics = driver.run_transactions(num_transactions)
    else:
        metrics = driver.run_for(duration_usec)
    # close the books: seal partial append pages / flush dirty heap pages so
    # both engines' outstanding writes are charged inside the window.
    db.shutdown()
    return MeasuredRun(
        engine=engine,
        setup=setup,
        warehouses=warehouses,
        metrics=metrics,
        device_delta=db.data_device.stats.diff(before),
        wal_delta=db.wal.device.stats.diff(wal_before),
        space_bytes=db.total_space_bytes(),
        db=db,
        driver=driver,
    )
