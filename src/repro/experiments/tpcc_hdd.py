"""Exhibit T3: TPC-C on HDD — throughput and response time per warehouse.

Regenerates the paper's HDD table (warehouses vs. NOTPM and response time
for SIAS and SI).  Expected shape: SIAS-V *scales* with warehouse count
while reads stay cached (appends are nearly free for the disk arm) and its
response times stay low far longer; SI's throughput decays with warehouse
count and its response times blow up — random in-place writes pay a full
seek each, and the arm is a single serial resource.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common import units
from repro.db.database import EngineKind
from repro.experiments import harness
from repro.experiments.render import format_table
from repro.workload.driver import DriverConfig
from repro.workload.tpcc_schema import TpccScale


@dataclass
class HddResult:
    """The regenerated HDD table, paper-style (metrics as rows)."""

    warehouse_counts: list[int]
    sias_notpm: list[float]
    si_notpm: list[float]
    sias_rt: list[float]
    si_rt: list[float]

    def table(self) -> str:
        """Render with warehouses as columns, like the paper's Table 2."""
        headers = ["metric"] + [str(w) for w in self.warehouse_counts]
        rows = [
            ["SIAS (NOTPM)"] + [round(v) for v in self.sias_notpm],
            ["SI (NOTPM)"] + [round(v) for v in self.si_notpm],
            ["SIAS (sec)"] + [round(v, 3) for v in self.sias_rt],
            ["SI (sec)"] + [round(v, 3) for v in self.si_rt],
        ]
        return format_table("T3 - TPC-C on HDD (warehouses as columns)",
                            headers, rows)


def run(warehouse_counts: tuple[int, ...] = (3, 6, 9, 12),
        duration_usec: int = 20 * units.SEC,
        scale: TpccScale | None = None,
        driver_config: DriverConfig | None = None,
        seed: int = 42) -> HddResult:
    """Sweep warehouse counts on the HDD with both engines."""
    driver_config = driver_config or DriverConfig(
        clients=4, maintenance_interval_usec=8 * units.SEC)
    result = HddResult(warehouse_counts=list(warehouse_counts),
                       sias_notpm=[], si_notpm=[], sias_rt=[], si_rt=[])
    for warehouses in warehouse_counts:
        sias = harness.run_tpcc(EngineKind.SIASV, harness.hdd_single(),
                                warehouses, duration_usec, scale=scale,
                                driver_config=driver_config, seed=seed)
        si = harness.run_tpcc(EngineKind.SI, harness.hdd_single(),
                              warehouses, duration_usec, scale=scale,
                              driver_config=driver_config, seed=seed)
        result.sias_notpm.append(sias.notpm)
        result.si_notpm.append(si.notpm)
        result.sias_rt.append(sias.metrics.mean_response_sec())
        result.si_rt.append(si.metrics.mean_response_sec())
    return result
