"""Black-box snapshot-isolation checking from recorded client histories.

Two halves, one file:

* :class:`RecordingDatabase` — a transparent wrapper around
  :class:`~repro.client.remote.RemoteDatabase` that records every
  transaction's reads and writes (keyed ``"table/pk"``) plus its fate
  into a shared :class:`History`.  Commit acknowledgements are stamped
  with a monotonically increasing ``commit_seq`` under one lock, so the
  history carries the *client-observed* commit order.
* :func:`check_history` — a polynomial black-box checker for the two
  anomalies snapshot isolation rules out and a reader can witness:
  **fractured reads** (a transaction's reads fit no single prefix of
  the commit order — the signature of per-shard snapshots) and **lost
  updates** (a committed writer whose snapshot predates a conflicting
  committed write to one of its own write keys).

The checker is deliberately weaker than full serializability checking
(write skew on disjoint keys is *allowed* — that is SI's documented
anomaly) and runs in polynomial time by exploiting what SI promises:
every transaction reads from one *prefix* of the commit order.  For
each committed or read-only transaction it computes, per read, the set
of prefixes compatible with the observed value, and intersects them:

* empty intersection over the reads → **fractured read**;
* no surviving prefix *after* the conflict floor (the latest other
  committed write to any of the transaction's own write keys) →
  **lost update** (first-updater-wins was violated).

Soundness caveats, inherent to black-box checking:

* ``commit_seq`` is the *ack* order.  For histories where writers of
  overlapping keys are sequential (one writer session, or externally
  ordered), ack order equals commit order and the checker is exact.
  Concurrent overlapping writers could have their acks reordered, which
  can only produce false *positives* never false negatives; the chaos
  sweeps use a single writer session, so the oracle is exact there.
* scans record only the rows they returned — a row a scan *missed* does
  not constrain the snapshot.  The sweeps read fixed key sets via
  ``lookup``, which records misses as reads of ``None``.

History files are JSON Lines: an optional ``{"type": "initial",
"state": {...}}`` header (the pre-history database state), then one
``{"type": "txn", ...}`` record per transaction::

    {"type": "txn", "txn": 17, "session": "w0", "status": "committed",
     "commit_seq": 4, "ops": [["r", "accounts/0", [0, "acct-0", 100.0]],
                              ["w", "accounts/0", [0, "acct-0", 93.0]]]}

Replay a file from the command line (also ``repro si-check``)::

    python -m repro.experiments.si_check history.jsonl
    python -m repro.experiments.si_check legacy.jsonl --expect-anomaly
"""

from __future__ import annotations

import argparse
import json
import threading
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.common.errors import CommitUncertainError

#: sentinel for "key absent" in timelines (distinct from any row value)
MISSING = ("__missing__",)


def _freeze(value: object) -> object:
    """Hashable, order-stable form of a row value for equality tests.

    JSON round-trips turn tuples into lists; freezing both sides to
    nested tuples makes live-recorded and file-loaded histories compare
    identically.
    """
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    return value


def _default_key(table: str, row: tuple) -> str:
    """Default item key: ``table/pk`` with the primary key in column 0."""
    return f"{table}/{row[0]}"


# -- recording ----------------------------------------------------------------


@dataclass
class _TxnRecord:
    """One transaction's observed behaviour, as the client saw it."""

    txn: int
    session: str
    status: str = "active"         # active|committed|aborted|uncertain
    commit_seq: int | None = None
    ops: list = field(default_factory=list)

    def to_json(self) -> dict:
        return {"type": "txn", "txn": self.txn, "session": self.session,
                "status": self.status, "commit_seq": self.commit_seq,
                "ops": self.ops}


class History:
    """Thread-safe shared history: many recording clients, one order.

    All :class:`RecordingDatabase` wrappers that should appear in the
    same commit order must share one ``History`` — the ``commit_seq``
    counter is the single clock that orders their acknowledgements.
    """

    def __init__(self) -> None:
        self._mu = threading.Lock()
        self._seq = 0
        self._records: list[_TxnRecord] = []
        self._initial: dict[str, object] = {}

    def record_initial(self, key: str, value: object) -> None:
        """Declare pre-history state (rows loaded outside recording)."""
        with self._mu:
            self._initial[key] = value

    def open_txn(self, txid: int, session: str) -> _TxnRecord:
        rec = _TxnRecord(txn=txid, session=session)
        with self._mu:
            self._records.append(rec)
        return rec

    def seal(self, rec: _TxnRecord, status: str) -> None:
        """Stamp a final fate; committed fates take the next seq."""
        with self._mu:
            rec.status = status
            if status == "committed":
                self._seq += 1
                rec.commit_seq = self._seq

    def to_records(self) -> list[dict]:
        """Plain-dict view, ready for :func:`check_history`."""
        with self._mu:
            out: list[dict] = []
            if self._initial:
                out.append({"type": "initial",
                            "state": dict(self._initial)})
            out.extend(rec.to_json() for rec in self._records)
            return out

    def dump(self, path: str) -> None:
        """Write the history as JSON Lines."""
        with open(path, "w", encoding="utf-8") as fh:
            for rec in self.to_records():
                fh.write(json.dumps(rec) + "\n")


def load_history(path: str) -> list[dict]:
    """Read a JSONL history file back into checker records."""
    records: list[dict] = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


class RecordingDatabase:
    """Wrap a :class:`RemoteDatabase`, recording reads/writes per txn.

    Only the operations the checker can key are recorded: ``lookup``
    and ``range_lookup`` hits (and lookup *misses*, as reads of
    ``None``), unprojected ``scan`` rows, ``read`` hits, and
    ``insert``/``bulk_insert``/``update`` writes.  ``aggregate`` and
    projected scans pass through unrecorded (they cannot be keyed);
    ``delete`` is unsupported here because the wire carries only the
    item handle, not the primary key.

    Everything else — pooling, retries, monitoring — delegates to the
    wrapped client untouched, so this drops into any workload that
    takes a ``RemoteDatabase``.
    """

    def __init__(self, remote, history: History, session: str = "s0",
                 key_of: Callable[[str, tuple], str] = _default_key) -> None:
        self._remote = remote
        self._history = history
        self._session = session
        self._key_of = key_of
        self._mu = threading.Lock()
        self._open: dict[int, _TxnRecord] = {}

    # -- txn lifecycle -------------------------------------------------------

    def begin(self, serializable: bool = False, at_ts: int | None = None,
              read_only: bool = False):
        if read_only:
            # only the replica-routing RemoteDatabase takes read_only;
            # growing the call keeps plain remotes working unchanged
            txn = self._remote.begin(serializable=serializable,
                                     at_ts=at_ts, read_only=True)
        else:
            txn = self._remote.begin(serializable=serializable, at_ts=at_ts)
        rec = self._history.open_txn(txn.txid, self._session)
        with self._mu:
            self._open[txn.txid] = rec
        return txn

    def commit(self, txn) -> None:
        rec = self._rec(txn.txid)
        try:
            self._remote.commit(txn)
        except CommitUncertainError:
            # keep the record open: resolve_commit will seal the true fate
            if rec is not None:
                self._history.seal(rec, "uncertain")
            raise
        except BaseException:
            self._seal(txn.txid, "aborted")
            raise
        self._seal(txn.txid, "committed")

    def abort(self, txn) -> None:
        try:
            self._remote.abort(txn)
        finally:
            self._seal(txn.txid, "aborted")

    def resolve_commit(self, txid: int, timeout_sec: float = 5.0,
                       poll_interval_sec: float = 0.02) -> str:
        """Resolve an uncertain commit and seal its record with the fate."""
        fate = self._remote.resolve_commit(
            txid, timeout_sec=timeout_sec,
            poll_interval_sec=poll_interval_sec)
        if fate in ("committed", "aborted"):
            self._seal(txid, fate)
        # an unresolved fate stays "uncertain": the checker holds such
        # transactions to no obligations instead of trusting a guess
        return fate

    def _rec(self, txid: int) -> _TxnRecord | None:
        with self._mu:
            return self._open.get(txid)

    def _seal(self, txid: int, status: str) -> None:
        with self._mu:
            rec = self._open.pop(txid, None)
        if rec is not None:
            self._history.seal(rec, status)

    def _log(self, txid: int, op: str, key: str, value: object) -> None:
        rec = self._rec(txid)
        if rec is not None:
            rec.ops.append([op, key, value])

    # -- recorded data operations --------------------------------------------

    def insert(self, txn, table: str, row: tuple):
        ref = self._remote.insert(txn, table, row)
        self._log(txn.txid, "w", self._key_of(table, row), list(row))
        return ref

    def bulk_insert(self, txn, table: str, rows: list[tuple]) -> list:
        refs = self._remote.bulk_insert(txn, table, rows)
        for row in rows:
            self._log(txn.txid, "w", self._key_of(table, row), list(row))
        return refs

    def update(self, txn, table: str, ref: object, row: tuple):
        out = self._remote.update(txn, table, ref, row)
        self._log(txn.txid, "w", self._key_of(table, row), list(row))
        return out

    def read(self, txn, table: str, ref: object):
        row = self._remote.read(txn, table, ref)
        if row is not None:
            self._log(txn.txid, "r", self._key_of(table, row), list(row))
        return row

    def lookup(self, txn, table: str, index_name: str,
               key: object) -> list[tuple]:
        hits = self._remote.lookup(txn, table, index_name, key)
        for _ref, row in hits:
            self._log(txn.txid, "r", self._key_of(table, row), list(row))
        if not hits and index_name == "pk":
            # a pk miss IS an observation: the key reads as absent
            self._log(txn.txid, "r", f"{table}/{key}", None)
        return hits

    def range_lookup(self, txn, table: str, index_name: str, lo: object,
                     hi: object) -> list[tuple]:
        hits = self._remote.range_lookup(txn, table, index_name, lo, hi)
        for _ref, row in hits:
            self._log(txn.txid, "r", self._key_of(table, row), list(row))
        return hits

    def scan(self, txn, table: str, columns: list[str] | None = None,
             where: tuple | None = None,
             batch_size: int = 256) -> Iterator[tuple]:
        for ref, row in self._remote.scan(txn, table, columns=columns,
                                          where=where,
                                          batch_size=batch_size):
            if columns is None:
                self._log(txn.txid, "r", self._key_of(table, row), list(row))
            yield ref, row

    def delete(self, txn, table: str, ref: object) -> None:
        raise NotImplementedError(
            "RecordingDatabase cannot key a delete (the wire carries the "
            "item handle, not the primary key); read-modify-write via "
            "update instead, or record through a custom wrapper")

    # -- passthrough ---------------------------------------------------------

    def __getattr__(self, name: str):
        return getattr(self._remote, name)

    def __enter__(self) -> "RecordingDatabase":
        return self

    def __exit__(self, *_exc) -> None:
        self._remote.close()


# -- checking -----------------------------------------------------------------


@dataclass
class Violation:
    """One snapshot-isolation violation found in a history."""

    kind: str                  # fractured-read | lost-update |
    #                          # own-write-lost | phantom-value
    txn: int
    session: str
    detail: str

    def __str__(self) -> str:
        return (f"[{self.kind}] txn {self.txn} (session "
                f"{self.session}): {self.detail}")


def _intersect(a: list[tuple[int, int]],
               b: list[tuple[int, int]]) -> list[tuple[int, int]]:
    """Intersect two sorted lists of inclusive ``(lo, hi)`` intervals."""
    out: list[tuple[int, int]] = []
    i = j = 0
    while i < len(a) and j < len(b):
        lo = max(a[i][0], b[j][0])
        hi = min(a[i][1], b[j][1])
        if lo <= hi:
            out.append((lo, hi))
        if a[i][1] < b[j][1]:
            i += 1
        else:
            j += 1
    return out


def _match_intervals(timeline: list[tuple[int, object]], value: object,
                     n: int) -> list[tuple[int, int]]:
    """Prefixes ``p`` (0..n) at which the key's state equals ``value``.

    ``timeline`` is ``[(prefix_index, state), ...]`` sorted ascending,
    starting at prefix 0; entry ``(p, v)`` holds until the next entry.
    """
    out: list[tuple[int, int]] = []
    for idx, (start, state) in enumerate(timeline):
        if state == value:
            end = timeline[idx + 1][0] - 1 if idx + 1 < len(timeline) else n
            if start <= end:
                out.append((start, end))
    return out


def check_history(records: list[dict],
                  max_violations: int = 50) -> list[Violation]:
    """Check a recorded history for SI violations; [] means it passed.

    Only ``committed`` transactions constrain or are constrained — an
    aborted transaction's reads carry no obligation (its snapshot may
    have been valid even if the connection died mid-flight), and an
    unresolved ``uncertain`` writer is excluded from the commit order
    (if some read *did* observe its value, that read surfaces as a
    phantom-value violation, which is exactly the right alarm).
    """
    initial: dict[str, object] = {}
    txns: list[dict] = []
    for rec in records:
        if rec.get("type") == "initial":
            for key, value in rec.get("state", {}).items():
                initial[key] = _freeze(value)
        elif rec.get("type") == "txn":
            txns.append(rec)

    committed = [t for t in txns if t["status"] == "committed"
                 and t.get("commit_seq") is not None]
    committed.sort(key=lambda t: t["commit_seq"])
    # writers enter the commit order; pure readers float over any prefix
    order = [t for t in committed
             if any(op[0] == "w" for op in t["ops"])]
    n = len(order)
    position = {t["txn"]: i + 1 for i, t in enumerate(order)}

    # per-key state timeline over prefixes 0..n of the commit order
    timelines: dict[str, list[tuple[int, object]]] = {}

    def timeline(key: str) -> list[tuple[int, object]]:
        if key not in timelines:
            timelines[key] = [(0, _freeze(initial.get(key, MISSING)))]
        return timelines[key]

    last_writer: dict[str, list[tuple[int, int]]] = {}  # key -> [(pos, txn)]
    for i, txn in enumerate(order):
        final: dict[str, object] = {}
        for op, key, value in txn["ops"]:
            if op == "w":
                final[key] = _freeze(value)
        for key, value in final.items():
            tl = timeline(key)
            if tl[-1][0] == i + 1:
                tl[-1] = (i + 1, value)
            else:
                tl.append((i + 1, value))
            last_writer.setdefault(key, []).append((i + 1, txn["txn"]))

    violations: list[Violation] = []

    def add(kind: str, txn: dict, detail: str) -> bool:
        violations.append(Violation(kind=kind, txn=txn["txn"],
                                    session=txn.get("session", "?"),
                                    detail=detail))
        return len(violations) >= max_violations

    for txn in committed:
        pos = position.get(txn["txn"])          # None for pure readers
        upper = (pos - 1) if pos is not None else n
        feasible: list[tuple[int, int]] = [(0, upper)]
        own: dict[str, object] = {}
        reads: list[tuple[str, object]] = []
        broken = False
        for op, key, value in txn["ops"]:
            frozen = _freeze(value) if value is not None else MISSING
            if op == "w":
                own[key] = _freeze(value)
                continue
            if key in own:
                if frozen != own[key]:
                    if add("own-write-lost", txn,
                           f"read {value!r} of {key} after writing "
                           f"{own[key]!r} in the same transaction"):
                        return violations
                    broken = True
                continue
            match = _match_intervals(timeline(key), frozen, n)
            if not match:
                if add("phantom-value", txn,
                       f"read {value!r} of {key}, which no committed "
                       f"transaction ever wrote"):
                    return violations
                broken = True
                continue
            reads.append((key, value))
            feasible = _intersect(feasible, match)
        if broken:
            continue
        if reads and not feasible:
            seen = ", ".join(f"{k}={v!r}" for k, v in reads)
            if add("fractured-read", txn,
                   f"no single prefix of the commit order explains its "
                   f"reads ({seen}) — a per-shard / torn snapshot"):
                return violations
            continue
        if pos is not None and own:
            floor = 0
            culprit = None
            for key in own:
                for wpos, wtxn in last_writer.get(key, []):
                    if wpos < pos and wtxn != txn["txn"] and wpos > floor:
                        floor, culprit = wpos, (wtxn, key)
            if floor and not _intersect(feasible, [(floor, upper)]):
                wtxn, key = culprit  # type: ignore[misc]
                if add("lost-update", txn,
                       f"its snapshot predates txn {wtxn}'s committed "
                       f"write to {key}, yet both committed — "
                       f"first-updater-wins was violated"):
                    return violations

    return violations


# -- CLI ----------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Replay a recorded history through the black-box "
                    "snapshot-isolation checker")
    parser.add_argument("history", help="JSONL history file (see module "
                                        "docstring for the format)")
    parser.add_argument("--expect-anomaly", action="store_true",
                        help="invert the verdict: exit 0 only if the "
                             "history DOES violate SI (for testing the "
                             "legacy per-shard-snapshots mode)")
    parser.add_argument("--max-violations", type=int, default=50,
                        help="stop after reporting this many")
    args = parser.parse_args(argv)

    records = load_history(args.history)
    txn_count = sum(1 for r in records if r.get("type") == "txn")
    violations = check_history(records, max_violations=args.max_violations)
    for v in violations:
        print(str(v))
    if args.expect_anomaly:
        if violations:
            print(f"si-check: anomaly present as expected "
                  f"({len(violations)} violation(s) in {txn_count} txns)")
            return 0
        print(f"si-check: expected an anomaly but {txn_count} txns "
              f"check clean — the reproducer lost its teeth")
        return 1
    if violations:
        print(f"si-check: {len(violations)} violation(s) in "
              f"{txn_count} txns")
        return 1
    print(f"si-check: {txn_count} txns, no SI violations")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
