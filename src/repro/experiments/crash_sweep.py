"""Crash-sweep fault injection: crash at every k-th device write, recover.

The sweep is the recovery subsystem's adversary.  One seeded run of a
bank-transfer workload is executed once in *count mode* to learn how many
device writes it issues; the sweep then re-executes the identical run once
per crash point, arming a :class:`~repro.storage.faults.CrashPoint` that
kills the process model exactly at the k-th write (data and WAL devices
share the counter, so every write the system issues — WAL forces, page
seals, heap flushes, checkpoint work — is a candidate crash site).  Every
other crash point is *torn*: the fatal write persists only a prefix of the
page, leaving a checksum-failing partial page for recovery to detect.

After each crash, :func:`repro.db.recovery.recover` runs and the recovered
state is checked against a mirror oracle maintained alongside the workload:

* **SIAS-V** — the full oracle.  Exactly the transfers whose ``commit()``
  returned are visible (commit forces the WAL, so a returned commit is
  durable; the one in-flight transaction is not), the balance total is
  conserved, every primary-key lookup agrees with the scan, and the
  recovered database accepts further committed work.
* **SI baseline** — the structural oracle.  The baseline is recovered
  checkpoint-consistent (heap mutations after a page's last flush are lost
  by design — the paper's asymmetry result), so value-level equality is
  *not* asserted; recovery must instead complete without error, produce a
  well-formed scan (unique ids, non-negative balances), agree with its own
  indexes, and accept further committed work.

Run it from the command line::

    python -m repro.experiments.crash_sweep --engine both --stride 25
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field

from repro.common import units
from repro.common.config import (
    BufferConfig,
    EngineConfig,
    FlashConfig,
    PageLayout,
    SystemConfig,
)
from repro.common.rng import make_rng
from repro.db.catalog import IndexDef
from repro.db.database import Database, EngineKind
from repro.db.recovery import crash, recover
from repro.db.schema import ColType, Schema
from repro.storage.faults import CrashPoint, FaultyDevice, SimulatedCrash
from repro.storage.flash import FlashDevice
from repro.common.clock import SimClock

ACCOUNTS = Schema.of(("id", ColType.INT), ("owner", ColType.STR),
                     ("balance", ColType.FLOAT))


@dataclass
class SweepConfig:
    """One crash sweep's parameters (fully determined by the seed)."""

    kind: EngineKind = EngineKind.SIASV
    accounts: int = 20
    transfers: int = 120
    stride: int = 1            # test every stride-th write
    seed: int = 7
    initial_balance: float = 100.0
    #: append-page layout (SIAS-V only): torn-page trim and recovery redo
    #: must behave identically for NSM and VECTOR pages
    layout: PageLayout = PageLayout.VECTOR
    #: one-page WAL ceiling so ``tick()`` fires real checkpoints mid-run
    #: and the sweep exercises checkpoint-anchored (bounded) redo
    max_wal_bytes: int = 8 * units.KIB


@dataclass
class CrashOutcome:
    """What happened at one crash point."""

    at_write: int
    crashed: bool               # False once k exceeds the run's writes
    torn: bool
    committed: int              # transfers whose commit() returned
    rolled_back_txns: int
    recovered_rows: int
    pages_torn: int


@dataclass
class SweepReport:
    """Aggregate over every crash point tested."""

    kind: EngineKind
    total_writes: int
    outcomes: list[CrashOutcome] = field(default_factory=list)

    @property
    def points_tested(self) -> int:
        return len(self.outcomes)

    @property
    def points_crashed(self) -> int:
        return sum(1 for o in self.outcomes if o.crashed)


class SweepInvariantError(AssertionError):
    """A recovery invariant failed at a specific crash point."""


@dataclass
class _WorkloadState:
    """Oracle state the workload maintains as it commits."""

    mirror: dict[int, float] = field(default_factory=dict)
    committed: int = 0  # transfers whose commit() returned


def _build_db(cfg: SweepConfig,
              crash_point: CrashPoint | None) -> Database:
    """The workload's database: both devices share one crash counter."""
    system = SystemConfig(
        flash=FlashConfig(capacity_bytes=64 * units.MIB),
        buffer=BufferConfig(pool_pages=128,
                            max_wal_bytes=cfg.max_wal_bytes),
        engine=EngineConfig(layout=cfg.layout),
        extent_pages=16,
    )
    clock = SimClock()
    data = FaultyDevice(FlashDevice(clock, system.flash, name="data-ssd"),
                        seed=cfg.seed, crash_point=crash_point)
    wal = FaultyDevice(FlashDevice(clock, system.flash, name="wal-ssd"),
                       seed=cfg.seed, crash_point=crash_point)
    db = Database(cfg.kind, data, wal, system)
    db.create_table("accounts", ACCOUNTS, indexes=[
        IndexDef("pk", ("id",), unique=True),
        IndexDef("by_owner", ("owner",)),
    ])
    return db


def _run_workload(db: Database, cfg: SweepConfig,
                  state: _WorkloadState) -> None:
    """Seeded transfers; ``state.mirror`` tracks the committed effects.

    Raises :class:`SimulatedCrash` wherever the armed crash point fires.
    Uses explicit begin/commit (not ``run_in_txn``) so a crash
    mid-transaction leaves the victim genuinely unfinished instead of
    letting the driver's error path abort it.
    """
    rng = make_rng(cfg.seed, "crash-sweep", "workload")
    txn = db.begin()
    for i in range(cfg.accounts):
        db.insert(txn, "accounts", (i, f"acct-{i}", cfg.initial_balance))
    db.commit(txn)
    for i in range(cfg.accounts):
        state.mirror[i] = cfg.initial_balance
    for _ in range(cfg.transfers):
        src = rng.randrange(cfg.accounts)
        dst = (src + 1 + rng.randrange(cfg.accounts - 1)) % cfg.accounts
        amount = float(rng.randrange(1, 10))
        txn = db.begin()
        (src_ref, src_row), = db.lookup(txn, "accounts", "pk", src)
        (dst_ref, dst_row), = db.lookup(txn, "accounts", "pk", dst)
        db.update(txn, "accounts", src_ref,
                  (src, src_row[1], src_row[2] - amount))
        db.update(txn, "accounts", dst_ref,
                  (dst, dst_row[1], dst_row[2] + amount))
        db.commit(txn)
        # commit returned: the WAL force completed, so this transfer is
        # durable — fold it into the oracle only now
        state.mirror[src] -= amount
        state.mirror[dst] += amount
        state.committed += 1
        db.tick()  # lets the checkpointer truncate the WAL mid-run


def _scan_rows(db: Database) -> dict[int, tuple]:
    txn = db.begin()
    rows = {row[0]: row for _ref, row in db.scan(txn, "accounts")}
    db.commit(txn)
    return rows


def _check_liveness(db: Database, rows: dict[int, tuple]) -> None:
    """The recovered database must accept new committed work."""
    if len(rows) < 2:
        return
    ids = sorted(rows)
    a, b = ids[0], ids[1]
    txn = db.begin()
    (a_ref, a_row), = db.lookup(txn, "accounts", "pk", a)
    (b_ref, b_row), = db.lookup(txn, "accounts", "pk", b)
    db.update(txn, "accounts", a_ref, (a, a_row[1], a_row[2] - 1.0))
    db.update(txn, "accounts", b_ref, (b, b_row[1], b_row[2] + 1.0))
    db.commit(txn)
    after = _scan_rows(db)
    if after[a][2] != a_row[2] - 1.0 or after[b][2] != b_row[2] + 1.0:
        raise SweepInvariantError(
            "post-recovery transfer did not take effect")


def _check_index_agreement(db: Database, rows: dict[int, tuple]) -> None:
    txn = db.begin()
    for acct_id, row in rows.items():
        hits = db.lookup(txn, "accounts", "pk", acct_id)
        if len(hits) != 1 or hits[0][1] != row:
            raise SweepInvariantError(
                f"pk index disagrees with scan for id {acct_id}: "
                f"{hits!r} vs {row!r}")
    db.commit(txn)


def _verify_siasv(db: Database, mirror: dict[int, float],
                  cfg: SweepConfig) -> dict[int, tuple]:
    """Full oracle: recovered state == committed mirror, money conserved."""
    rows = _scan_rows(db)
    if set(rows) != set(mirror):
        raise SweepInvariantError(
            f"recovered ids {sorted(rows)} != committed ids "
            f"{sorted(mirror)}")
    for acct_id, expected in mirror.items():
        got = rows[acct_id][2]
        if got != expected:
            raise SweepInvariantError(
                f"account {acct_id}: balance {got} != durable {expected}")
    if mirror:
        total = sum(row[2] for row in rows.values())
        if total != cfg.initial_balance * cfg.accounts:
            raise SweepInvariantError(
                f"money not conserved: {total} != "
                f"{cfg.initial_balance * cfg.accounts}")
    _check_index_agreement(db, rows)
    return rows


def _verify_si(db: Database, mirror: dict[int, float],
               cfg: SweepConfig) -> dict[int, tuple]:
    """Structural oracle: the baseline is checkpoint-consistent only."""
    rows = _scan_rows(db)
    if not set(rows) <= set(range(cfg.accounts)):
        raise SweepInvariantError(f"unknown account ids: {sorted(rows)}")
    for acct_id, row in rows.items():
        if row[1] != f"acct-{acct_id}":
            raise SweepInvariantError(f"mangled row for id {acct_id}: "
                                      f"{row!r}")
    _check_index_agreement(db, rows)
    return rows


def run_one(cfg: SweepConfig, at_write: int,
            torn: bool) -> CrashOutcome:
    """Run the seeded workload with a crash armed at ``at_write``."""
    point = CrashPoint(at_write=at_write, torn=torn)
    db = _build_db(cfg, point)
    state = _WorkloadState()
    crashed = False
    try:
        _run_workload(db, cfg, state)
        db.shutdown()
    except SimulatedCrash:
        crashed = True
    point.disarm()  # the machine is dead; recovery may touch the device
    crash(db)
    report = recover(db)
    verify = (_verify_siasv if cfg.kind is EngineKind.SIASV
              else _verify_si)
    rows = verify(db, state.mirror, cfg)
    _check_liveness(db, rows)
    pages_torn = sum(r.pages_torn for r in report.engine_reports.values())
    return CrashOutcome(
        at_write=at_write,
        crashed=crashed,
        torn=torn,
        committed=state.committed,
        rolled_back_txns=report.rolled_back_txns,
        recovered_rows=len(rows),
        pages_torn=pages_torn,
    )


def count_writes(cfg: SweepConfig) -> int:
    """Count mode: how many device writes does one clean run issue?"""
    point = CrashPoint(at_write=0)  # never fires, only counts
    db = _build_db(cfg, point)
    _run_workload(db, cfg, _WorkloadState())
    db.shutdown()
    return point.writes_seen


def run_sweep(cfg: SweepConfig) -> SweepReport:
    """Crash at every ``stride``-th write of the run; verify each time.

    Raises :class:`SweepInvariantError` (with the crash point in the
    message) the moment any recovery invariant fails.
    """
    total = count_writes(cfg)
    report = SweepReport(kind=cfg.kind, total_writes=total)
    for k in range(1, total + 1, cfg.stride):
        torn = (k // cfg.stride) % 2 == 1  # every other point tears
        try:
            outcome = run_one(cfg, k, torn)
        except SweepInvariantError as exc:
            raise SweepInvariantError(
                f"[{cfg.kind.name} crash at write {k}"
                f"{' torn' if torn else ''}] {exc}") from exc
        report.outcomes.append(outcome)
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Crash-sweep fault injection against recovery")
    parser.add_argument("--engine", choices=["siasv", "si", "both"],
                        default="both")
    parser.add_argument("--stride", type=int, default=10,
                        help="crash at every stride-th device write")
    parser.add_argument("--transfers", type=int, default=120)
    parser.add_argument("--accounts", type=int, default=20)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--layout", choices=["vector", "nsm"],
                        default="vector",
                        help="append-page layout under test (SIAS-V)")
    args = parser.parse_args(argv)
    kinds = {"siasv": [EngineKind.SIASV], "si": [EngineKind.SI],
             "both": [EngineKind.SIASV, EngineKind.SI]}[args.engine]
    layout = (PageLayout.NSM if args.layout == "nsm"
              else PageLayout.VECTOR)
    for kind in kinds:
        cfg = SweepConfig(kind=kind, accounts=args.accounts,
                          transfers=args.transfers, stride=args.stride,
                          seed=args.seed, layout=layout)
        report = run_sweep(cfg)
        torn_seen = sum(o.pages_torn for o in report.outcomes)
        print(f"{kind.name:6s}: {report.points_tested} crash points over "
              f"{report.total_writes} writes "
              f"({report.points_crashed} crashed, "
              f"{torn_seen} torn pages detected) — all invariants held")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
