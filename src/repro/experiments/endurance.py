"""Ablation A4: flash endurance — erase behaviour and write amplification.

The paper argues SIAS-V's I/O pattern "suggests an increased endurance of
the Flash memories": fewer host writes, sequential appends in monotonically
increasing order, and no small in-place updates that force the FTL into
erase-rewrite cycles.  The simulated FTL makes this measurable: the runner
reports, for both engines under the identical update-heavy workload, the
host write count, device program count, block erases, write amplification,
per-block wear spread and the write-locality score.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common import units
from repro.db.database import EngineKind
from repro.experiments import harness
from repro.experiments.render import format_table
from repro.common.config import BufferConfig, FlashConfig, SystemConfig
from repro.storage.flash import FlashDevice
from repro.storage.trace import TraceRecorder, swimlane_locality
from repro.workload.driver import DriverConfig
from repro.workload.mixes import UPDATE_HEAVY_MIX
from repro.workload.tpcc_schema import TpccScale


@dataclass
class EnduranceResult:
    """One row per engine."""

    rows: list[list[object]]
    erases: dict[str, int]
    write_amp: dict[str, float]

    def table(self) -> str:
        """Render the endurance comparison."""
        return format_table(
            "A4 - flash endurance under the update-heavy mix",
            ["engine", "host writes", "programs", "erases", "write amp",
             "wear max", "write locality"],
            self.rows)


def run(warehouses: int = 8, duration_usec: int = 20 * units.SEC,
        capacity_mib: int = 96, num_transactions: int | None = 4000,
        scale: TpccScale | None = None,
        seed: int = 42) -> EnduranceResult:
    """Run both engines on a deliberately small SSD so GC pressure shows.

    The device is sized a few multiples of the working set: the FTL must
    wrap around and erase during the run, making the wear delta between the
    two write patterns visible.  ``num_transactions`` fixes the amount of
    work so both engines stress the device equally.
    """
    driver_config = DriverConfig(clients=8, mix=dict(UPDATE_HEAVY_MIX),
                                 maintenance_interval_usec=10 * units.SEC)
    small_ssd = harness.ssd_single().with_config(SystemConfig(
        flash=FlashConfig(capacity_bytes=capacity_mib * units.MIB,
                          gc_free_block_low_watermark=4),
        buffer=BufferConfig(pool_pages=1024),
        extent_pages=32))
    rows: list[list[object]] = []
    erases: dict[str, int] = {}
    write_amp: dict[str, float] = {}
    for engine in (EngineKind.SIASV, EngineKind.SI):
        trace = TraceRecorder()
        measured = harness.run_tpcc(engine, small_ssd, warehouses,
                                    duration_usec, scale=scale,
                                    driver_config=driver_config,
                                    num_transactions=num_transactions,
                                    trace=trace, seed=seed)
        device = measured.db.data_device
        assert isinstance(device, FlashDevice)
        label = engine.value
        stats = device.ftl.stats
        _wear_min, wear_max, _wear_mean = device.wear_stats()
        erases[label] = stats.erases
        write_amp[label] = stats.write_amplification
        rows.append([label, stats.host_writes, stats.programs, stats.erases,
                     round(stats.write_amplification, 3), wear_max,
                     round(swimlane_locality(trace, region_pages=32), 3)])
    return EnduranceResult(rows=rows, erases=erases, write_amp=write_amp)
