"""Failover chaos sweep: kill the leader at every k-th shipped frame.

The replication layer's adversary, the third member of the sweep family
(:mod:`crash_sweep` power-fails the engine, :mod:`chaos_sweep` breaks
connections): one seeded run of a bank-transfer workload executes against
a WAL-shipping leader/replica pair in *count mode* to learn how many
frames the follower applies; the sweep then re-executes the identical run
once per fault point, power-failing the **leader** (server stopped, then
:func:`repro.db.recovery.crash`) exactly when the follower has applied
its k-th frame.  The follower is promoted, the client fails writes over,
and the rest of the workload runs against the new leader.

Commit confirmation is **semi-synchronous**: a transfer is folded into
the oracle mirror only after its commit is acked *and* the follower has
caught up past it.  A commit whose confirmation the kill interrupted is
*uncertain*; its fate is resolved by ``TXN_STATUS`` at the promoted node
— committed there means it replicated in time and survives, unknown
means it died with the old leader, which is exactly the durability a
semi-sync ack never extended.

The oracle, per fault point:

* the promoted node's settled state equals the confirmed-transfer mirror
  — every confirmed commit survived the failover **exactly once**, no
  lost or double-applied transfer;
* the balance total is conserved;
* the restarted old leader, fenced into the dead epoch, refuses writes
  (``FENCED`` on the wire) — a zombie can never ack anything again;
* every recorded read — replica reads pinned at the replay watermark
  before the failover, promoted-leader reads after — passes the
  black-box SI checker (:mod:`repro.experiments.si_check`): snapshots
  spanning the failover are stale-bounded, never fractured.

Run it from the command line (also ``repro replicate`` and
``repro chaos-sweep --failover``)::

    python -m repro.experiments.failover --stride 3
"""

from __future__ import annotations

import argparse
import contextlib
import time
from dataclasses import dataclass, field

from repro.client.pool import CircuitBreaker, ConnectionPool, RetryPolicy
from repro.client.remote import RemoteDatabase, RemoteTransaction
from repro.common.errors import (
    AmbiguousResultError,
    CircuitOpenError,
    CommitUncertainError,
    DeadlineExceededError,
    RemoteError,
    ReplicationError,
)
from repro.common.rng import make_rng
from repro.db.catalog import IndexDef
from repro.db.database import Database, EngineKind
from repro.db.recovery import crash, recover
from repro.db.schema import ColType, Schema
from repro.experiments.si_check import (
    History,
    RecordingDatabase,
    check_history,
)
from repro.replication import RemoteSource, ReplicationHub, WalFollower
from repro.server.server import DatabaseServer, ServerConfig

ACCOUNTS = Schema.of(("id", ColType.INT), ("owner", ColType.STR),
                     ("balance", ColType.FLOAT))

#: a dead leader surfaces as any of these, depending on where the call
#: was when the plug was pulled
_DISRUPT = (ConnectionError, OSError, CircuitOpenError,
            DeadlineExceededError, AmbiguousResultError, RemoteError,
            ReplicationError)


@dataclass
class FailoverSweepConfig:
    """One failover sweep's parameters (fully determined by the seed)."""

    accounts: int = 8
    transfers: int = 12
    stride: int = 1            # kill at every stride-th applied frame
    seed: int = 23
    initial_balance: float = 100.0
    deadline_ms: int = 10_000
    settle_timeout_sec: float = 5.0
    #: records per shipped frame; deliberately tiny so a transaction's
    #: records straddle frames and kills land mid-transaction-stream
    batch_limit: int = 2


@dataclass
class FailoverOutcome:
    """What happened at one kill point."""

    at_frame: int
    tripped: bool              # the kill actually fired
    confirmed: int             # transfers in the oracle mirror
    failed: int                # transfers lost to the failover
    uncertain: int             # commits resolved at the promoted node
    uncertain_committed: int   # ... of which had replicated in time
    promoted_epoch: int        # epoch after promotion (0: no promotion)
    si_txns: int = 0
    si_violations: int = 0


@dataclass
class FailoverSweepReport:
    """Aggregate over every kill point tested."""

    total_frames: int
    outcomes: list[FailoverOutcome] = field(default_factory=list)

    @property
    def points_tested(self) -> int:
        return len(self.outcomes)

    @property
    def points_tripped(self) -> int:
        return sum(1 for o in self.outcomes if o.tripped)

    @property
    def uncertain_total(self) -> int:
        return sum(o.uncertain for o in self.outcomes)

    @property
    def uncertain_survived(self) -> int:
        return sum(o.uncertain_committed for o in self.outcomes)

    @property
    def si_txns_checked(self) -> int:
        return sum(o.si_txns for o in self.outcomes)


class FailoverInvariantError(AssertionError):
    """A failover invariant failed at a specific kill point."""


class _SemiSyncRecorder(RecordingDatabase):
    """Records like :class:`RecordingDatabase`, but seals a writer's
    fate only when replication settles it: ``commit`` leaves the record
    open, and the workload calls :meth:`seal_confirmed` (acked *and*
    caught up — enters the commit order now) or :meth:`seal_lost` (died
    with the old leader — carries no checker obligation)."""

    def commit(self, txn) -> None:
        self._remote.commit(txn)

    def seal_confirmed(self, txn) -> None:
        self._seal(txn.txid, "committed")

    def seal_lost(self, txn) -> None:
        self._seal(txn.txid, "aborted")


@dataclass
class _Pair:
    """One leader/replica pair and the follower gluing them together."""

    leader_db: Database
    leader_server: DatabaseServer
    hub: ReplicationHub
    replica_db: Database
    replica_server: DatabaseServer
    follower: WalFollower
    source_pool: ConnectionPool
    leader_dead: bool = False


def _new_db() -> Database:
    db = Database.on_flash(EngineKind.SIASV)
    db.create_table("accounts", ACCOUNTS, indexes=[
        IndexDef("pk", ("id",), unique=True),
        IndexDef("by_owner", ("owner",)),
    ])
    return db


def _retry() -> RetryPolicy:
    # deterministic backoff: no wall-clock jitter in a seeded sweep
    return RetryPolicy(base_delay_sec=0.001, max_delay_sec=0.01,
                       jitter=False)


def _start_pair(cfg: FailoverSweepConfig) -> _Pair:
    leader_db = _new_db()
    hub = ReplicationHub(leader_db)
    leader_server = DatabaseServer(leader_db, ServerConfig(
        port=0, idle_timeout_sec=30.0, drain_timeout_sec=1.0),
        replication=hub)
    leader_server.start_in_background()
    # the replica must mirror the leader's schema in creation order:
    # relation ids are positional and DDL is not WAL-logged
    replica_db = _new_db()
    host, port = leader_server.address  # type: ignore[misc]
    source_pool = ConnectionPool(size=1, retry=_retry(),
                                 endpoints=[(host, port)])
    follower = WalFollower(replica_db, RemoteSource(source_pool),
                           batch_limit=cfg.batch_limit)
    replica_server = DatabaseServer(replica_db, ServerConfig(
        port=0, idle_timeout_sec=30.0, drain_timeout_sec=1.0),
        replication=follower)
    try:
        replica_server.start_in_background()
        follower.connect()
    except BaseException:
        replica_server.stop_in_background()
        leader_server.stop_in_background()
        raise
    return _Pair(leader_db=leader_db, leader_server=leader_server,
                 hub=hub, replica_db=replica_db,
                 replica_server=replica_server, follower=follower,
                 source_pool=source_pool)


def _client(pair: _Pair, cfg: FailoverSweepConfig) -> RemoteDatabase:
    lh, lp = pair.leader_server.address  # type: ignore[misc]
    rh, rp = pair.replica_server.address  # type: ignore[misc]
    # per-endpoint breakers: once the killed leader's breaker opens,
    # read-only routing falls back to the promoted node without dialing
    breaker = CircuitBreaker(failure_threshold=3, reset_timeout_sec=60.0)
    return RemoteDatabase(lh, lp, replicas=[(rh, rp)], pool_size=2,
                          retry=_retry(), breaker=breaker,
                          deadline_ms=cfg.deadline_ms)


def _kill_leader(pair: _Pair) -> None:
    """Power-fail the leader: stop serving, drop every volatile byte."""
    pair.leader_dead = True
    pair.leader_server.stop_in_background()
    crash(pair.leader_db)


def _setup_accounts(pair: _Pair, cfg: FailoverSweepConfig,
                    mirror: dict[int, float], history: History) -> None:
    """Seed balances at the leader and replicate them (not under test)."""
    host, port = pair.leader_server.address  # type: ignore[misc]
    with RemoteDatabase(host, port, pool_size=1) as clean:
        txn = clean.begin()
        clean.bulk_insert(txn, "accounts", [
            (i, f"acct-{i}", cfg.initial_balance)
            for i in range(cfg.accounts)])
        clean.commit(txn)
    pair.follower.catch_up()
    for i in range(cfg.accounts):
        mirror[i] = cfg.initial_balance
        history.record_initial(f"accounts/{i}",
                               [i, f"acct-{i}", cfg.initial_balance])


def _replica_read(reader: RecordingDatabase,
                  cfg: FailoverSweepConfig) -> None:
    """One recorded read-only pass over every account.

    Routed to the replica while it exists (snapshot pinned at the replay
    watermark), to the promoted leader afterwards.  These reads are the
    checker's witness that no snapshot spanning the failover was ever
    fractured.  A read lost to the dying leader's endpoint carries no
    obligation — the aborted record is exactly right.
    """
    txn = None
    try:
        txn = reader.begin(read_only=True)
        for i in range(cfg.accounts):
            reader.lookup(txn, "accounts", "pk", i)
        reader.commit(txn)
    except _DISRUPT:
        if txn is not None:
            with contextlib.suppress(Exception):
                reader.abort(txn)


def _settle(db: Database, cfg: FailoverSweepConfig, at_frame: int) -> None:
    """The serving node must quiesce: no active txns, no held locks."""
    deadline = time.monotonic() + cfg.settle_timeout_sec
    while True:
        _commits, _aborts, active = db.txn_mgr.counters()
        if active == 0 and db.txn_mgr.locks.held_count() == 0:
            return
        if time.monotonic() >= deadline:
            raise FailoverInvariantError(
                f"promoted node did not settle after kill at frame "
                f"{at_frame}: {active} active txns, "
                f"{db.txn_mgr.locks.held_count()} locks held")
        time.sleep(0.01)


def _verify(client: RemoteDatabase, cfg: FailoverSweepConfig,
            mirror: dict[int, float], at_frame: int) -> None:
    """Exactly-once value oracle against whoever leads now."""
    txn = client.begin()
    rows = {row[0]: row for _ref, row in client.scan(txn, "accounts")}
    if set(rows) != set(mirror):
        raise FailoverInvariantError(
            f"row ids {sorted(rows)} != confirmed ids {sorted(mirror)}")
    for acct_id, expected in mirror.items():
        got = rows[acct_id][2]
        if got != expected:
            raise FailoverInvariantError(
                f"account {acct_id}: balance {got} != confirmed "
                f"{expected} — a confirmed transfer was lost or "
                f"double-applied across the failover")
    total = sum(row[2] for row in rows.values())
    if total != cfg.initial_balance * cfg.accounts:
        raise FailoverInvariantError(
            f"money not conserved: {total} != "
            f"{cfg.initial_balance * cfg.accounts}")
    for acct_id, row in rows.items():
        hits = client.lookup(txn, "accounts", "pk", acct_id)
        if len(hits) != 1 or hits[0][1] != row:
            raise FailoverInvariantError(
                f"pk index disagrees with scan for id {acct_id} after "
                f"failover: {hits!r} vs {row!r}")
    client.commit(txn)


def _verify_fenced(pair: _Pair, at_frame: int) -> None:
    """Restart the dead leader fenced; it must refuse to ack a write."""
    recover(pair.leader_db)
    zombie_hub = ReplicationHub(pair.leader_db, epoch=1)
    zombie_hub.fence()
    server = DatabaseServer(pair.leader_db, ServerConfig(
        port=0, idle_timeout_sec=30.0, drain_timeout_sec=1.0),
        replication=zombie_hub)
    server.start_in_background()
    try:
        host, port = server.address  # type: ignore[misc]
        with RemoteDatabase(host, port, pool_size=1) as zombie:
            txn = zombie.begin()
            try:
                zombie.insert(txn, "accounts", (10_000, "zombie", 1.0))
            except ReplicationError:
                pass  # fenced, as required
            else:
                raise FailoverInvariantError(
                    f"fenced old leader acked a write after the "
                    f"promotion at frame {at_frame}")
            finally:
                with contextlib.suppress(Exception):
                    zombie.abort(txn)
    finally:
        server.stop_in_background()


def run_one(cfg: FailoverSweepConfig,
            kill_at: int | None) -> tuple[FailoverOutcome, int]:
    """One seeded run; ``kill_at`` is the applied-frame kill point
    (None = count mode).  Returns the outcome and the frame count."""
    pair = _start_pair(cfg)
    history = History()
    mirror: dict[int, float] = {}
    confirmed = failed = uncertain = uncertain_committed = 0
    promoted_epoch = 0
    frames = 0
    #: acked commits whose confirmation the kill interrupted
    unresolved: list[tuple[RemoteTransaction, int, int, float]] = []
    client = recorder = None
    try:
        _setup_accounts(pair, cfg, mirror, history)
        client = _client(pair, cfg)
        recorder = _SemiSyncRecorder(client, history, session="w0")
        reader = RecordingDatabase(client, history,
                                   session="replica-reader")

        def on_frame(_follower: WalFollower) -> None:
            nonlocal frames
            frames += 1
            if kill_at is not None and frames == kill_at \
                    and not pair.leader_dead:
                _kill_leader(pair)

        def promote_and_failover() -> None:
            nonlocal promoted_epoch, confirmed, failed
            nonlocal uncertain_committed
            promoted_epoch = pair.follower.promote()
            client.failover_to(1)
            # resolve interrupted confirmations at the promoted node:
            # nothing ships anymore, so its answer is final
            for txn, src, dst, amount in unresolved:
                if client.txn_status(txn.txid) == "committed":
                    uncertain_committed += 1
                    recorder.seal_confirmed(txn)
                    mirror[src] -= amount
                    mirror[dst] += amount
                    confirmed += 1
                else:
                    recorder.seal_lost(txn)
                    failed += 1
            unresolved.clear()

        rng = make_rng(cfg.seed, "failover-sweep", "workload")
        for _ in range(cfg.transfers):
            src = rng.randrange(cfg.accounts)
            dst = (src + 1 + rng.randrange(cfg.accounts - 1)) % cfg.accounts
            amount = float(rng.randrange(1, 10))
            for attempt in (1, 2):
                txn = None
                fate = "lost"
                try:
                    txn = recorder.begin()
                    (src_ref, src_row), = recorder.lookup(
                        txn, "accounts", "pk", src)
                    (dst_ref, dst_row), = recorder.lookup(
                        txn, "accounts", "pk", dst)
                    recorder.update(txn, "accounts", src_ref,
                                    (src, src_row[1], src_row[2] - amount))
                    recorder.update(txn, "accounts", dst_ref,
                                    (dst, dst_row[1], dst_row[2] + amount))
                except _DISRUPT:
                    if txn is not None:
                        with contextlib.suppress(Exception):
                            recorder.abort(txn)
                else:
                    try:
                        recorder.commit(txn)
                        fate = "acked"
                    except (CommitUncertainError,) + _DISRUPT:
                        # the request may have reached the dying leader;
                        # never resend — resolve after the promotion
                        fate = "uncertain"
                if fate == "acked":
                    if pair.follower.role == "leader":
                        # post-failover: single-node durability is the
                        # contract, the ack is the confirmation
                        recorder.seal_confirmed(txn)
                        mirror[src] -= amount
                        mirror[dst] += amount
                        confirmed += 1
                    else:
                        try:
                            pair.follower.catch_up(on_frame=on_frame)
                        except _DISRUPT:
                            uncertain += 1
                            unresolved.append((txn, src, dst, amount))
                        else:
                            recorder.seal_confirmed(txn)
                            mirror[src] -= amount
                            mirror[dst] += amount
                            confirmed += 1
                    break
                if fate == "uncertain":
                    uncertain += 1
                    unresolved.append((txn, src, dst, amount))
                    break
                # lost before the commit was sent: fail over and retry
                # the transfer once against the promoted node
                if not pair.leader_dead:
                    raise FailoverInvariantError(
                        "transfer lost its connection without a kill")
                if pair.follower.role != "leader":
                    promote_and_failover()
                    continue
                if attempt == 2:
                    failed += 1
            if pair.leader_dead and pair.follower.role != "leader":
                promote_and_failover()
            _replica_read(reader, cfg)

        serving_db = (pair.replica_db if pair.leader_dead
                      else pair.leader_db)
        _settle(serving_db, cfg, kill_at or 0)
        _verify(client, cfg, mirror, kill_at or 0)
        if pair.leader_dead:
            _verify_fenced(pair, kill_at or 0)
        records = history.to_records()
        si_txns = sum(1 for r in records if r.get("type") == "txn")
        violations = check_history(records)
        if violations:
            shown = "; ".join(str(v) for v in violations[:3])
            raise FailoverInvariantError(
                f"SI checker found {len(violations)} violation(s) in "
                f"{si_txns} recorded txns: {shown}")
    finally:
        if client is not None:
            client.close()
        pair.source_pool.close()
        pair.replica_server.stop_in_background()
        if not pair.leader_dead:
            pair.leader_server.stop_in_background()
    return FailoverOutcome(
        at_frame=kill_at or 0,
        tripped=pair.leader_dead,
        confirmed=confirmed,
        failed=failed,
        uncertain=uncertain,
        uncertain_committed=uncertain_committed,
        promoted_epoch=promoted_epoch,
        si_txns=si_txns,
        si_violations=len(violations),
    ), frames


def count_frames(cfg: FailoverSweepConfig) -> int:
    """Count mode: applied frames of one kill-free run."""
    outcome, frames = run_one(cfg, None)
    if outcome.confirmed != cfg.transfers or outcome.failed \
            or outcome.uncertain:
        raise FailoverInvariantError(
            f"count mode lost transfers without a kill: "
            f"{outcome.confirmed} confirmed, {outcome.failed} failed, "
            f"{outcome.uncertain} uncertain of {cfg.transfers}")
    if frames == 0:
        raise FailoverInvariantError(
            "count mode shipped no frames — replication is not wired in")
    return frames


def run_sweep(cfg: FailoverSweepConfig) -> FailoverSweepReport:
    """Kill the leader at every ``stride``-th applied frame; verify.

    Raises :class:`FailoverInvariantError` (with the kill point in the
    message) the moment any invariant fails.
    """
    total = count_frames(cfg)
    report = FailoverSweepReport(total_frames=total)
    for k in range(1, total + 1, cfg.stride):
        try:
            outcome, _ = run_one(cfg, k)
        except FailoverInvariantError as exc:
            raise FailoverInvariantError(
                f"[leader kill at frame {k}] {exc}") from exc
        if not outcome.tripped:
            raise FailoverInvariantError(
                f"kill at frame {k} never fired "
                f"(run shipped fewer frames than count mode)")
        if outcome.promoted_epoch < 2:
            raise FailoverInvariantError(
                f"kill at frame {k} did not promote the follower")
        report.outcomes.append(outcome)
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Failover sweep: kill the replication leader at "
                    "every k-th shipped frame, promote, verify")
    parser.add_argument("--stride", type=int, default=1,
                        help="kill at every stride-th applied frame")
    parser.add_argument("--transfers", type=int, default=12)
    parser.add_argument("--accounts", type=int, default=8)
    parser.add_argument("--seed", type=int, default=23)
    args = parser.parse_args(argv)
    cfg = FailoverSweepConfig(accounts=args.accounts,
                              transfers=args.transfers,
                              stride=args.stride, seed=args.seed)
    report = run_sweep(cfg)
    print(f"failover: {report.points_tested} kill points over "
          f"{report.total_frames} shipped frames "
          f"({report.points_tripped} leaders killed and fenced, "
          f"{report.uncertain_total} interrupted confirmations — "
          f"{report.uncertain_survived} had replicated in time, "
          f"{report.si_txns_checked} txns SI-checked: 0 violations) — "
          f"all invariants held")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
