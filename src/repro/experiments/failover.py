"""Failover chaos sweep: kill the leader at every k-th shipped frame.

The replication layer's adversary, the third member of the sweep family
(:mod:`crash_sweep` power-fails the engine, :mod:`chaos_sweep` breaks
connections): one seeded run of a bank-transfer workload executes against
a WAL-shipping leader/replica pair in *count mode* to learn how many
frames the follower applies; the sweep then re-executes the identical run
once per fault point, power-failing the **leader** (server stopped, then
:func:`repro.db.recovery.crash`) exactly when the follower has applied
its k-th frame.  The follower is promoted, the client fails writes over,
and the rest of the workload runs against the new leader.

Commit confirmation is **semi-synchronous**: a transfer is folded into
the oracle mirror only after its commit is acked *and* the follower has
caught up past it.  A commit whose confirmation the kill interrupted is
*uncertain*; its fate is resolved by ``TXN_STATUS`` at the promoted node
— committed there means it replicated in time and survives, unknown
means it died with the old leader, which is exactly the durability a
semi-sync ack never extended.

The oracle, per fault point:

* the promoted node's settled state equals the confirmed-transfer mirror
  — every confirmed commit survived the failover **exactly once**, no
  lost or double-applied transfer;
* the balance total is conserved;
* the restarted old leader, fenced into the dead epoch, refuses writes
  (``FENCED`` on the wire) — a zombie can never ack anything again;
* every recorded read — replica reads pinned at the replay watermark
  before the failover, promoted-leader reads after — passes the
  black-box SI checker (:mod:`repro.experiments.si_check`): snapshots
  spanning the failover are stale-bounded, never fractured.

The module also hosts the **resync sweep** (``--mode resync`` /
``resync-source`` / ``eviction``): a fully in-process
leader → replica → replica cascading chain where every shipped frame and
every installed base-backup chunk is a kill point.  The progressing
follower (or the backup's source) is power-failed there, restarted, and
must self-heal through its supervisor — reconnect, automatic full
resync, re-bootstrap — until the whole chain converges to the root's
exact state, with recorded replica reads passing the same black-box SI
checker.  The eviction scenario runs the root under a slot-retention
budget and drives a lagging follower into eviction and back through
resync.

Run it from the command line (also ``repro replicate`` and
``repro chaos-sweep --failover``)::

    python -m repro.experiments.failover --stride 3
    python -m repro.experiments.failover --mode resync --stride 4
"""

from __future__ import annotations

import argparse
import contextlib
import time
from dataclasses import dataclass, field

from repro.client.pool import CircuitBreaker, ConnectionPool, RetryPolicy
from repro.client.remote import RemoteDatabase, RemoteTransaction
from repro.common.errors import (
    AmbiguousResultError,
    CircuitOpenError,
    CommitUncertainError,
    DeadlineExceededError,
    RemoteError,
    ReplicationError,
)
from repro.common.rng import make_rng
from repro.db.catalog import IndexDef
from repro.db.database import Database, EngineKind
from repro.db.recovery import crash, recover
from repro.db.schema import ColType, Schema
from repro.experiments.si_check import (
    History,
    RecordingDatabase,
    check_history,
)
from repro.replication import (
    FollowerSupervisor,
    RemoteSource,
    ReplicationHub,
    WalFollower,
)
from repro.server.server import DatabaseServer, ServerConfig

ACCOUNTS = Schema.of(("id", ColType.INT), ("owner", ColType.STR),
                     ("balance", ColType.FLOAT))

#: a dead leader surfaces as any of these, depending on where the call
#: was when the plug was pulled
_DISRUPT = (ConnectionError, OSError, CircuitOpenError,
            DeadlineExceededError, AmbiguousResultError, RemoteError,
            ReplicationError)


@dataclass
class FailoverSweepConfig:
    """One failover sweep's parameters (fully determined by the seed)."""

    accounts: int = 8
    transfers: int = 12
    stride: int = 1            # kill at every stride-th applied frame
    seed: int = 23
    initial_balance: float = 100.0
    deadline_ms: int = 10_000
    settle_timeout_sec: float = 5.0
    #: records per shipped frame; deliberately tiny so a transaction's
    #: records straddle frames and kills land mid-transaction-stream
    batch_limit: int = 2


@dataclass
class FailoverOutcome:
    """What happened at one kill point."""

    at_frame: int
    tripped: bool              # the kill actually fired
    confirmed: int             # transfers in the oracle mirror
    failed: int                # transfers lost to the failover
    uncertain: int             # commits resolved at the promoted node
    uncertain_committed: int   # ... of which had replicated in time
    promoted_epoch: int        # epoch after promotion (0: no promotion)
    si_txns: int = 0
    si_violations: int = 0


@dataclass
class FailoverSweepReport:
    """Aggregate over every kill point tested."""

    total_frames: int
    outcomes: list[FailoverOutcome] = field(default_factory=list)

    @property
    def points_tested(self) -> int:
        return len(self.outcomes)

    @property
    def points_tripped(self) -> int:
        return sum(1 for o in self.outcomes if o.tripped)

    @property
    def uncertain_total(self) -> int:
        return sum(o.uncertain for o in self.outcomes)

    @property
    def uncertain_survived(self) -> int:
        return sum(o.uncertain_committed for o in self.outcomes)

    @property
    def si_txns_checked(self) -> int:
        return sum(o.si_txns for o in self.outcomes)


class FailoverInvariantError(AssertionError):
    """A failover invariant failed at a specific kill point."""


class _SemiSyncRecorder(RecordingDatabase):
    """Records like :class:`RecordingDatabase`, but seals a writer's
    fate only when replication settles it: ``commit`` leaves the record
    open, and the workload calls :meth:`seal_confirmed` (acked *and*
    caught up — enters the commit order now) or :meth:`seal_lost` (died
    with the old leader — carries no checker obligation)."""

    def commit(self, txn) -> None:
        self._remote.commit(txn)

    def seal_confirmed(self, txn) -> None:
        self._seal(txn.txid, "committed")

    def seal_lost(self, txn) -> None:
        self._seal(txn.txid, "aborted")


@dataclass
class _Pair:
    """One leader/replica pair and the follower gluing them together."""

    leader_db: Database
    leader_server: DatabaseServer
    hub: ReplicationHub
    replica_db: Database
    replica_server: DatabaseServer
    follower: WalFollower
    source_pool: ConnectionPool
    leader_dead: bool = False


def _new_db() -> Database:
    db = Database.on_flash(EngineKind.SIASV)
    db.create_table("accounts", ACCOUNTS, indexes=[
        IndexDef("pk", ("id",), unique=True),
        IndexDef("by_owner", ("owner",)),
    ])
    return db


def _retry() -> RetryPolicy:
    # deterministic backoff: no wall-clock jitter in a seeded sweep
    return RetryPolicy(base_delay_sec=0.001, max_delay_sec=0.01,
                       jitter=False)


def _start_pair(cfg: FailoverSweepConfig) -> _Pair:
    leader_db = _new_db()
    hub = ReplicationHub(leader_db)
    leader_server = DatabaseServer(leader_db, ServerConfig(
        port=0, idle_timeout_sec=30.0, drain_timeout_sec=1.0),
        replication=hub)
    leader_server.start_in_background()
    # the replica must mirror the leader's schema in creation order:
    # relation ids are positional and DDL is not WAL-logged
    replica_db = _new_db()
    host, port = leader_server.address  # type: ignore[misc]
    source_pool = ConnectionPool(size=1, retry=_retry(),
                                 endpoints=[(host, port)])
    follower = WalFollower(replica_db, RemoteSource(source_pool),
                           batch_limit=cfg.batch_limit)
    replica_server = DatabaseServer(replica_db, ServerConfig(
        port=0, idle_timeout_sec=30.0, drain_timeout_sec=1.0),
        replication=follower)
    try:
        replica_server.start_in_background()
        follower.connect()
    except BaseException:
        replica_server.stop_in_background()
        leader_server.stop_in_background()
        raise
    return _Pair(leader_db=leader_db, leader_server=leader_server,
                 hub=hub, replica_db=replica_db,
                 replica_server=replica_server, follower=follower,
                 source_pool=source_pool)


def _client(pair: _Pair, cfg: FailoverSweepConfig) -> RemoteDatabase:
    lh, lp = pair.leader_server.address  # type: ignore[misc]
    rh, rp = pair.replica_server.address  # type: ignore[misc]
    # per-endpoint breakers: once the killed leader's breaker opens,
    # read-only routing falls back to the promoted node without dialing
    breaker = CircuitBreaker(failure_threshold=3, reset_timeout_sec=60.0)
    return RemoteDatabase(lh, lp, replicas=[(rh, rp)], pool_size=2,
                          retry=_retry(), breaker=breaker,
                          deadline_ms=cfg.deadline_ms)


def _kill_leader(pair: _Pair) -> None:
    """Power-fail the leader: stop serving, drop every volatile byte."""
    pair.leader_dead = True
    pair.leader_server.stop_in_background()
    crash(pair.leader_db)


def _setup_accounts(pair: _Pair, cfg: FailoverSweepConfig,
                    mirror: dict[int, float], history: History) -> None:
    """Seed balances at the leader and replicate them (not under test)."""
    host, port = pair.leader_server.address  # type: ignore[misc]
    with RemoteDatabase(host, port, pool_size=1) as clean:
        txn = clean.begin()
        clean.bulk_insert(txn, "accounts", [
            (i, f"acct-{i}", cfg.initial_balance)
            for i in range(cfg.accounts)])
        clean.commit(txn)
    pair.follower.catch_up()
    for i in range(cfg.accounts):
        mirror[i] = cfg.initial_balance
        history.record_initial(f"accounts/{i}",
                               [i, f"acct-{i}", cfg.initial_balance])


def _replica_read(reader: RecordingDatabase,
                  cfg: FailoverSweepConfig) -> None:
    """One recorded read-only pass over every account.

    Routed to the replica while it exists (snapshot pinned at the replay
    watermark), to the promoted leader afterwards.  These reads are the
    checker's witness that no snapshot spanning the failover was ever
    fractured.  A read lost to the dying leader's endpoint carries no
    obligation — the aborted record is exactly right.
    """
    txn = None
    try:
        txn = reader.begin(read_only=True)
        for i in range(cfg.accounts):
            reader.lookup(txn, "accounts", "pk", i)
        reader.commit(txn)
    except _DISRUPT:
        if txn is not None:
            with contextlib.suppress(Exception):
                reader.abort(txn)


def _settle(db: Database, cfg: FailoverSweepConfig, at_frame: int) -> None:
    """The serving node must quiesce: no active txns, no held locks."""
    deadline = time.monotonic() + cfg.settle_timeout_sec
    while True:
        _commits, _aborts, active = db.txn_mgr.counters()
        if active == 0 and db.txn_mgr.locks.held_count() == 0:
            return
        if time.monotonic() >= deadline:
            raise FailoverInvariantError(
                f"promoted node did not settle after kill at frame "
                f"{at_frame}: {active} active txns, "
                f"{db.txn_mgr.locks.held_count()} locks held")
        time.sleep(0.01)


def _verify(client: RemoteDatabase, cfg: FailoverSweepConfig,
            mirror: dict[int, float], at_frame: int) -> None:
    """Exactly-once value oracle against whoever leads now."""
    txn = client.begin()
    rows = {row[0]: row for _ref, row in client.scan(txn, "accounts")}
    if set(rows) != set(mirror):
        raise FailoverInvariantError(
            f"row ids {sorted(rows)} != confirmed ids {sorted(mirror)}")
    for acct_id, expected in mirror.items():
        got = rows[acct_id][2]
        if got != expected:
            raise FailoverInvariantError(
                f"account {acct_id}: balance {got} != confirmed "
                f"{expected} — a confirmed transfer was lost or "
                f"double-applied across the failover")
    total = sum(row[2] for row in rows.values())
    if total != cfg.initial_balance * cfg.accounts:
        raise FailoverInvariantError(
            f"money not conserved: {total} != "
            f"{cfg.initial_balance * cfg.accounts}")
    for acct_id, row in rows.items():
        hits = client.lookup(txn, "accounts", "pk", acct_id)
        if len(hits) != 1 or hits[0][1] != row:
            raise FailoverInvariantError(
                f"pk index disagrees with scan for id {acct_id} after "
                f"failover: {hits!r} vs {row!r}")
    client.commit(txn)


def _verify_fenced(pair: _Pair, at_frame: int) -> None:
    """Restart the dead leader fenced; it must refuse to ack a write."""
    recover(pair.leader_db)
    zombie_hub = ReplicationHub(pair.leader_db, epoch=1)
    zombie_hub.fence()
    server = DatabaseServer(pair.leader_db, ServerConfig(
        port=0, idle_timeout_sec=30.0, drain_timeout_sec=1.0),
        replication=zombie_hub)
    server.start_in_background()
    try:
        host, port = server.address  # type: ignore[misc]
        with RemoteDatabase(host, port, pool_size=1) as zombie:
            txn = zombie.begin()
            try:
                zombie.insert(txn, "accounts", (10_000, "zombie", 1.0))
            except ReplicationError:
                pass  # fenced, as required
            else:
                raise FailoverInvariantError(
                    f"fenced old leader acked a write after the "
                    f"promotion at frame {at_frame}")
            finally:
                with contextlib.suppress(Exception):
                    zombie.abort(txn)
    finally:
        server.stop_in_background()


def run_one(cfg: FailoverSweepConfig,
            kill_at: int | None) -> tuple[FailoverOutcome, int]:
    """One seeded run; ``kill_at`` is the applied-frame kill point
    (None = count mode).  Returns the outcome and the frame count."""
    pair = _start_pair(cfg)
    history = History()
    mirror: dict[int, float] = {}
    confirmed = failed = uncertain = uncertain_committed = 0
    promoted_epoch = 0
    frames = 0
    #: acked commits whose confirmation the kill interrupted
    unresolved: list[tuple[RemoteTransaction, int, int, float]] = []
    client = recorder = None
    try:
        _setup_accounts(pair, cfg, mirror, history)
        client = _client(pair, cfg)
        recorder = _SemiSyncRecorder(client, history, session="w0")
        reader = RecordingDatabase(client, history,
                                   session="replica-reader")

        def on_frame(_follower: WalFollower) -> None:
            nonlocal frames
            frames += 1
            if kill_at is not None and frames == kill_at \
                    and not pair.leader_dead:
                _kill_leader(pair)

        def promote_and_failover() -> None:
            nonlocal promoted_epoch, confirmed, failed
            nonlocal uncertain_committed
            promoted_epoch = pair.follower.promote()
            client.failover_to(1)
            # resolve interrupted confirmations at the promoted node:
            # nothing ships anymore, so its answer is final
            for txn, src, dst, amount in unresolved:
                if client.txn_status(txn.txid) == "committed":
                    uncertain_committed += 1
                    recorder.seal_confirmed(txn)
                    mirror[src] -= amount
                    mirror[dst] += amount
                    confirmed += 1
                else:
                    recorder.seal_lost(txn)
                    failed += 1
            unresolved.clear()

        rng = make_rng(cfg.seed, "failover-sweep", "workload")
        for _ in range(cfg.transfers):
            src = rng.randrange(cfg.accounts)
            dst = (src + 1 + rng.randrange(cfg.accounts - 1)) % cfg.accounts
            amount = float(rng.randrange(1, 10))
            for attempt in (1, 2):
                txn = None
                fate = "lost"
                try:
                    txn = recorder.begin()
                    (src_ref, src_row), = recorder.lookup(
                        txn, "accounts", "pk", src)
                    (dst_ref, dst_row), = recorder.lookup(
                        txn, "accounts", "pk", dst)
                    recorder.update(txn, "accounts", src_ref,
                                    (src, src_row[1], src_row[2] - amount))
                    recorder.update(txn, "accounts", dst_ref,
                                    (dst, dst_row[1], dst_row[2] + amount))
                except _DISRUPT:
                    if txn is not None:
                        with contextlib.suppress(Exception):
                            recorder.abort(txn)
                else:
                    try:
                        recorder.commit(txn)
                        fate = "acked"
                    except (CommitUncertainError,) + _DISRUPT:
                        # the request may have reached the dying leader;
                        # never resend — resolve after the promotion
                        fate = "uncertain"
                if fate == "acked":
                    if pair.follower.role == "leader":
                        # post-failover: single-node durability is the
                        # contract, the ack is the confirmation
                        recorder.seal_confirmed(txn)
                        mirror[src] -= amount
                        mirror[dst] += amount
                        confirmed += 1
                    else:
                        try:
                            pair.follower.catch_up(on_frame=on_frame)
                        except _DISRUPT:
                            uncertain += 1
                            unresolved.append((txn, src, dst, amount))
                        else:
                            recorder.seal_confirmed(txn)
                            mirror[src] -= amount
                            mirror[dst] += amount
                            confirmed += 1
                    break
                if fate == "uncertain":
                    uncertain += 1
                    unresolved.append((txn, src, dst, amount))
                    break
                # lost before the commit was sent: fail over and retry
                # the transfer once against the promoted node
                if not pair.leader_dead:
                    raise FailoverInvariantError(
                        "transfer lost its connection without a kill")
                if pair.follower.role != "leader":
                    promote_and_failover()
                    continue
                if attempt == 2:
                    failed += 1
            if pair.leader_dead and pair.follower.role != "leader":
                promote_and_failover()
            _replica_read(reader, cfg)

        serving_db = (pair.replica_db if pair.leader_dead
                      else pair.leader_db)
        _settle(serving_db, cfg, kill_at or 0)
        _verify(client, cfg, mirror, kill_at or 0)
        if pair.leader_dead:
            _verify_fenced(pair, kill_at or 0)
        records = history.to_records()
        si_txns = sum(1 for r in records if r.get("type") == "txn")
        violations = check_history(records)
        if violations:
            shown = "; ".join(str(v) for v in violations[:3])
            raise FailoverInvariantError(
                f"SI checker found {len(violations)} violation(s) in "
                f"{si_txns} recorded txns: {shown}")
    finally:
        if client is not None:
            client.close()
        pair.source_pool.close()
        pair.replica_server.stop_in_background()
        if not pair.leader_dead:
            pair.leader_server.stop_in_background()
    return FailoverOutcome(
        at_frame=kill_at or 0,
        tripped=pair.leader_dead,
        confirmed=confirmed,
        failed=failed,
        uncertain=uncertain,
        uncertain_committed=uncertain_committed,
        promoted_epoch=promoted_epoch,
        si_txns=si_txns,
        si_violations=len(violations),
    ), frames


def count_frames(cfg: FailoverSweepConfig) -> int:
    """Count mode: applied frames of one kill-free run."""
    outcome, frames = run_one(cfg, None)
    if outcome.confirmed != cfg.transfers or outcome.failed \
            or outcome.uncertain:
        raise FailoverInvariantError(
            f"count mode lost transfers without a kill: "
            f"{outcome.confirmed} confirmed, {outcome.failed} failed, "
            f"{outcome.uncertain} uncertain of {cfg.transfers}")
    if frames == 0:
        raise FailoverInvariantError(
            "count mode shipped no frames — replication is not wired in")
    return frames


def run_sweep(cfg: FailoverSweepConfig) -> FailoverSweepReport:
    """Kill the leader at every ``stride``-th applied frame; verify.

    Raises :class:`FailoverInvariantError` (with the kill point in the
    message) the moment any invariant fails.
    """
    total = count_frames(cfg)
    report = FailoverSweepReport(total_frames=total)
    for k in range(1, total + 1, cfg.stride):
        try:
            outcome, _ = run_one(cfg, k)
        except FailoverInvariantError as exc:
            raise FailoverInvariantError(
                f"[leader kill at frame {k}] {exc}") from exc
        if not outcome.tripped:
            raise FailoverInvariantError(
                f"kill at frame {k} never fired "
                f"(run shipped fewer frames than count mode)")
        if outcome.promoted_epoch < 2:
            raise FailoverInvariantError(
                f"kill at frame {k} did not promote the follower")
        report.outcomes.append(outcome)
    return report


# ---------------------------------------------------------------------------
# Resync sweep: kill a cascading chain at every progress event; it must
# self-heal through automatic full resync and supervised reconnects
# ---------------------------------------------------------------------------

#: who dies at an eligible progress event: ``follower`` kills the node
#: that just made progress (applied a frame, installed a backup chunk —
#: so every frame *and* every mid-backup installer crash is swept);
#: ``source`` kills the *upstream* node at every installed backup chunk —
#: the leader of an in-flight base backup dies mid-image
RESYNC_MODES = ("follower", "source")


@dataclass
class ResyncSweepConfig:
    """One resync sweep's parameters (fully determined by the seed)."""

    accounts: int = 6
    transfers: int = 8
    #: transfers shipped while the mid-chain replica is detached, so the
    #: forced full resync bootstraps over real missed history
    lag_transfers: int = 3
    stride: int = 1            # kill at every stride-th eligible event
    seed: int = 29
    initial_balance: float = 100.0
    #: records per shipped frame; tiny so kills straddle transactions
    batch_limit: int = 2
    #: image records per backup chunk; tiny so kills land mid-image
    backup_chunk_records: int = 3
    mode: str = "follower"
    #: slot-retention budget for the eviction scenario
    retention_budget: int = 24
    #: supervision-step ceiling before a run is declared wedged
    max_steps: int = 600


@dataclass
class ResyncOutcome:
    """What happened at one kill point of the resync sweep."""

    at_event: int
    tripped: bool
    resyncs: int               # full resyncs completed across the chain
    restarts: int              # nodes power-failed and recovered
    si_txns: int = 0
    si_violations: int = 0


@dataclass
class ResyncSweepReport:
    """Aggregate over every resync-sweep kill point tested."""

    total_events: int
    mode: str
    outcomes: list[ResyncOutcome] = field(default_factory=list)

    @property
    def points_tested(self) -> int:
        return len(self.outcomes)

    @property
    def points_tripped(self) -> int:
        return sum(1 for o in self.outcomes if o.tripped)

    @property
    def resyncs_total(self) -> int:
        return sum(o.resyncs for o in self.outcomes)

    @property
    def restarts_total(self) -> int:
        return sum(o.restarts for o in self.outcomes)

    @property
    def si_txns_checked(self) -> int:
        return sum(o.si_txns for o in self.outcomes)


class _Killed(Exception):
    """Raised by a kill point right after power-failing its victim."""

    def __init__(self, node: "_ChainNode") -> None:
        super().__init__(f"killed {node.name}")
        self.node = node


@dataclass
class _ChainNode:
    """One member of the leader → r1 → r2 chain."""

    name: str
    db: Database
    upstream: "_ChainNode | None" = None
    cascade: bool = False
    #: what this node serves: a ReplicationHub at the root, the current
    #: WalFollower elsewhere (replaced wholesale on every restart)
    serving: object = None
    sup: FollowerSupervisor | None = None
    down: bool = False
    restarts: int = 0
    #: resyncs completed by follower objects a restart already replaced
    resyncs_done: int = 0

    @property
    def resyncs(self) -> int:
        if self.upstream is None:
            return 0
        return self.resyncs_done + self.serving.resyncs


class _ChainSource:
    """The transport between chain nodes.

    Delegates the replication-source surface to whatever the upstream
    node is *currently* serving (its hub, or the follower object that
    replaced a crashed one), and refuses with ``ConnectionError`` while
    the node is down — a crashed process answers nothing.
    """

    def __init__(self, node: _ChainNode) -> None:
        self.node = node

    def _up(self):
        if self.node.down:
            raise ConnectionError(f"node {self.node.name} is down")
        return self.node.serving

    def subscribe(self, follower_id: str, start_seq: int) -> dict:
        return self._up().subscribe(follower_id, start_seq)

    def unsubscribe(self, follower_id: str) -> None:
        self._up().unsubscribe(follower_id)

    def fetch(self, follower_id: str, epoch: int, since_seq: int,
              acked_seq: int, limit: int):
        return self._up().fetch(follower_id, epoch, since_seq, acked_seq,
                                limit)

    def backup_begin(self, follower_id: str) -> dict:
        return self._up().backup_begin(follower_id)

    def backup_fetch(self, backup_id: str, epoch: int,
                     chunk_index: int) -> list[tuple]:
        return self._up().backup_fetch(backup_id, epoch, chunk_index)

    def backup_end(self, backup_id: str) -> None:
        self._up().backup_end(backup_id)


class _Chain:
    """A three-node leader → replica → replica chain under a kill plan.

    Fully in-process and single-threaded: every supervision step, shipped
    frame, and installed backup chunk happens inside a driver call, so
    the k-th eligible event of every run is the same event count mode
    saw, and a kill at it is exactly reproducible.
    """

    def __init__(self, cfg: ResyncSweepConfig, kill_at: int | None,
                 retention_budget: int | None = None) -> None:
        self.cfg = cfg
        self.kill_at = kill_at
        self.events = 0
        self.tripped = False
        self.steps = 0
        self.history = History()
        self.mirror: dict[int, float] = {}
        self.rng = make_rng(cfg.seed, "resync-sweep", "workload")
        self.leader = _ChainNode("leader", _new_db())
        self.leader.serving = ReplicationHub(
            self.leader.db, backup_chunk_records=cfg.backup_chunk_records,
            max_retained_records=retention_budget)
        self.r1 = _ChainNode("r1", _new_db(), upstream=self.leader,
                             cascade=True)
        self._attach(self.r1)
        self.r2: _ChainNode | None = None
        self.writer = RecordingDatabase(self.leader.db, self.history,
                                        session="w0")
        self.readers: dict[str, RecordingDatabase] = {
            "r1": RecordingDatabase(self.r1.db, self.history,
                                    session="read-r1")}
        #: leader closed_ts after seeding — replica reads below it would
        #: predate the initial rows and carry no checker obligation
        self.floor = 0

    # -- wiring --------------------------------------------------------------

    def _attach(self, node: _ChainNode) -> None:
        """Give ``node`` a fresh supervised follower over its upstream."""
        follower = WalFollower(node.db, _ChainSource(node.upstream),
                               follower_id=node.name,
                               batch_limit=self.cfg.batch_limit,
                               cascade=node.cascade)
        if follower.hub is not None:
            follower.hub.backup_chunk_records = \
                self.cfg.backup_chunk_records
        follower.on_resync_chunk = \
            lambda _f, _i: self._event("chunk", node)
        node.serving = follower
        node.sup = FollowerSupervisor(
            follower,
            retry=RetryPolicy(base_delay_sec=0.0, max_delay_sec=0.0,
                              jitter=False),
            sleep=lambda _s: None,
            on_frame=lambda _f: self._event("frame", node))

    def start_tail(self) -> None:
        """Truncate r1's WAL, then chain r2 off it: the grand-follower
        can only join through a *cascading* online base backup."""
        self.r1.db.checkpointer.run_now()
        self.r2 = _ChainNode("r2", _new_db(), upstream=self.r1)
        self._attach(self.r2)
        self.readers["r2"] = RecordingDatabase(self.r2.db, self.history,
                                               session="read-r2")

    # -- the kill plan -------------------------------------------------------

    def _event(self, kind: str, node: _ChainNode) -> None:
        if self.cfg.mode == "source" and kind != "chunk":
            return
        self.events += 1
        if self.kill_at is None or self.tripped \
                or self.events != self.kill_at:
            return
        self.tripped = True
        victim = node if self.cfg.mode == "follower" else node.upstream
        victim.down = True
        crash(victim.db)
        raise _Killed(victim)

    def _restart(self, node: _ChainNode) -> None:
        """Power the victim back on: recover, re-wire, resume."""
        node.restarts += 1
        recover(node.db)
        if node.upstream is None:
            # a restarted backup source forgets its in-flight jobs; a
            # mid-install client is refused and begins a new backup
            self.leader.serving = ReplicationHub(
                node.db,
                backup_chunk_records=self.cfg.backup_chunk_records)
        else:
            node.resyncs_done += node.serving.resyncs
            self._attach(node)
        node.down = False

    def _crank(self, node: _ChainNode) -> None:
        try:
            node.sup.step()
        except _Killed as exc:
            self._restart(exc.node)

    def pump(self, goal, what: str) -> None:
        """Supervise the chain until ``goal()`` holds (or declare it
        wedged) — every failure mode must heal without driver help."""
        nodes = [n for n in (self.r1, self.r2) if n is not None]
        while not goal():
            self.steps += 1
            if self.steps > self.cfg.max_steps:
                raise FailoverInvariantError(
                    f"chain wedged while {what}: {self.cfg.max_steps} "
                    f"supervision steps without converging")
            for node in nodes:
                self._crank(node)

    # -- workload ------------------------------------------------------------

    def seed(self) -> None:
        db = self.leader.db
        txn = db.begin()
        db.bulk_insert(txn, "accounts", [
            (i, f"acct-{i}", self.cfg.initial_balance)
            for i in range(self.cfg.accounts)])
        db.commit(txn)
        for i in range(self.cfg.accounts):
            self.mirror[i] = self.cfg.initial_balance
            self.history.record_initial(
                f"accounts/{i}", [i, f"acct-{i}",
                                  self.cfg.initial_balance])
        self.floor = db.closed_ts()
        self.pump(lambda: self.r1.serving.watermark >= self.floor,
                  "streaming the seed rows to r1")

    def transfer(self) -> None:
        """One confirmed transfer at the root (the root never dies with
        a write in flight in this sweep — the failover sweep owns that)."""
        cfg = self.cfg
        src = self.rng.randrange(cfg.accounts)
        dst = (src + 1 + self.rng.randrange(cfg.accounts - 1)) \
            % cfg.accounts
        amount = float(self.rng.randrange(1, 10))
        txn = self.writer.begin()
        (src_ref, src_row), = self.writer.lookup(txn, "accounts", "pk",
                                                 src)
        (dst_ref, dst_row), = self.writer.lookup(txn, "accounts", "pk",
                                                 dst)
        self.writer.update(txn, "accounts", src_ref,
                           (src, src_row[1], src_row[2] - amount))
        self.writer.update(txn, "accounts", dst_ref,
                           (dst, dst_row[1], dst_row[2] + amount))
        self.writer.commit(txn)
        self.mirror[src] -= amount
        self.mirror[dst] += amount

    def force_root_resync(self) -> None:
        """Detach r1, ship history past it, truncate the root's WAL: the
        next fetch is refused below base and r1 must bootstrap from the
        root's online base backup."""
        for _ in range(self.cfg.lag_transfers):
            self.transfer()
        self.leader.serving.unsubscribe("r1")
        self.leader.db.checkpointer.run_now()
        target = self.leader.db.closed_ts()
        self.pump(lambda: self.r1.serving.watermark >= target,
                  "resyncing r1 from the root's base backup")

    def replica_read(self, name: str) -> None:
        """One recorded read-only pass, pinned at the replay watermark."""
        node = self.r1 if name == "r1" else self.r2
        reader = self.readers[name]
        watermark = node.serving.watermark
        if watermark < self.floor:
            return  # freshly restarted; predates the seed rows
        txn = reader.begin(at_ts=watermark)
        for i in range(self.cfg.accounts):
            reader.lookup(txn, "accounts", "pk", i)
        reader.commit(txn)

    # -- verification --------------------------------------------------------

    def verify(self) -> None:
        """Exactly-once oracle on all three nodes of the settled chain."""
        for node in (self.leader, self.r1, self.r2):
            db = node.db
            txn = db.begin()
            rows = {row[0]: row for _ref, row in db.scan(txn, "accounts")}
            if set(rows) != set(self.mirror):
                raise FailoverInvariantError(
                    f"{node.name}: row ids {sorted(rows)} != confirmed "
                    f"ids {sorted(self.mirror)}")
            for acct_id, expected in self.mirror.items():
                got = rows[acct_id][2]
                if got != expected:
                    raise FailoverInvariantError(
                        f"{node.name} account {acct_id}: balance {got} "
                        f"!= confirmed {expected} — a confirmed transfer "
                        f"was lost or double-applied through the resync")
            total = sum(row[2] for row in rows.values())
            if total != self.cfg.initial_balance * self.cfg.accounts:
                raise FailoverInvariantError(
                    f"{node.name}: money not conserved: {total} != "
                    f"{self.cfg.initial_balance * self.cfg.accounts}")
            for acct_id, row in rows.items():
                hits = db.lookup(txn, "accounts", "pk", acct_id)
                if len(hits) != 1 or hits[0][1] != row:
                    raise FailoverInvariantError(
                        f"{node.name}: pk index disagrees with scan for "
                        f"id {acct_id}: {hits!r} vs {row!r}")
            db.commit(txn)

    def check_si(self) -> int:
        records = self.history.to_records()
        si_txns = sum(1 for r in records if r.get("type") == "txn")
        violations = check_history(records)
        if violations:
            shown = "; ".join(str(v) for v in violations[:3])
            raise FailoverInvariantError(
                f"SI checker found {len(violations)} violation(s) in "
                f"{si_txns} recorded txns: {shown}")
        return si_txns

    # -- one run -------------------------------------------------------------

    def run(self) -> ResyncOutcome:
        self.seed()
        self.force_root_resync()
        self.start_tail()
        target = self.leader.db.closed_ts()
        self.pump(lambda: self.r2.serving.watermark >= target,
                  "bootstrapping r2 through the cascading backup")
        for _ in range(self.cfg.transfers):
            self.transfer()
            self._crank(self.r1)
            self._crank(self.r2)
            self.replica_read("r1")
            self.replica_read("r2")
        final = self.leader.db.closed_ts()
        self.pump(lambda: self.r1.serving.watermark >= final
                  and self.r2.serving.watermark >= final,
                  "converging the chain after the workload")
        self.verify()
        si_txns = self.check_si()
        return ResyncOutcome(
            at_event=self.kill_at or 0,
            tripped=self.tripped,
            resyncs=self.r1.resyncs + self.r2.resyncs,
            restarts=(self.leader.restarts + self.r1.restarts
                      + self.r2.restarts),
            si_txns=si_txns,
            si_violations=0,
        )


def count_resync_events(cfg: ResyncSweepConfig) -> int:
    """Count mode: eligible events of one kill-free chain run."""
    chain = _Chain(cfg, None)
    outcome = chain.run()
    if outcome.resyncs < 2:
        raise FailoverInvariantError(
            f"count mode completed only {outcome.resyncs} resyncs — the "
            f"forced r1 bootstrap and the cascading r2 bootstrap must "
            f"both run")
    if chain.events == 0:
        raise FailoverInvariantError(
            "count mode saw no eligible events — the kill plan has "
            "nothing to sweep")
    return chain.events


def run_resync_sweep(cfg: ResyncSweepConfig) -> ResyncSweepReport:
    """Kill the chain at every ``stride``-th eligible event; verify.

    Raises :class:`FailoverInvariantError` (with the kill point in the
    message) the moment any invariant fails.
    """
    if cfg.mode not in RESYNC_MODES:
        raise ValueError(f"unknown resync mode {cfg.mode!r} "
                         f"(expected one of {RESYNC_MODES})")
    total = count_resync_events(cfg)
    report = ResyncSweepReport(total_events=total, mode=cfg.mode)
    for k in range(1, total + 1, cfg.stride):
        try:
            outcome = _Chain(cfg, k).run()
        except FailoverInvariantError as exc:
            raise FailoverInvariantError(
                f"[{cfg.mode} kill at event {k}] {exc}") from exc
        if not outcome.tripped:
            raise FailoverInvariantError(
                f"kill at event {k} never fired (run saw fewer events "
                f"than count mode)")
        report.outcomes.append(outcome)
    return report


def run_eviction_scenario(cfg: ResyncSweepConfig) -> dict:
    """Bounded retention under a lagging follower, healed by resync.

    The root's WAL runs under ``retention_budget``; r1 stops fetching
    while checkpointed transfers keep shipping, so honouring its slot
    would exceed the budget — the slot is evicted, truncation proceeds,
    and the evicted follower rejoins through an automatic full resync
    (observed by its supervisor) while r2 stays chained through it.
    """
    chain = _Chain(cfg, None, retention_budget=cfg.retention_budget)
    chain.seed()
    chain.start_tail()
    target = chain.leader.db.closed_ts()
    chain.pump(lambda: chain.r2.serving.watermark >= target,
               "bootstrapping r2 through the cascading backup")
    wal = chain.leader.db.wal
    rounds = 0
    while wal.slots_evicted == 0:
        rounds += 1
        if rounds > 50:
            raise FailoverInvariantError(
                f"no slot eviction after {rounds} checkpointed transfers "
                f"under budget {cfg.retention_budget}")
        chain.transfer()
        chain.leader.db.checkpointer.run_now()
    retained = wal.retained_records()
    if retained > cfg.retention_budget:
        raise FailoverInvariantError(
            f"retention not bounded after eviction: {retained} records "
            f"kept under budget {cfg.retention_budget}")
    for _ in range(cfg.transfers):
        chain.transfer()
        chain._crank(chain.r1)
        chain._crank(chain.r2)
        chain.replica_read("r1")
        chain.replica_read("r2")
    final = chain.leader.db.closed_ts()
    chain.pump(lambda: chain.r1.serving.watermark >= final
               and chain.r2.serving.watermark >= final,
               "re-converging the chain after the eviction")
    if chain.r1.resyncs < 1:
        raise FailoverInvariantError(
            "evicted follower converged without a full resync — it "
            "must have read truncated history")
    if chain.r1.sup.resyncs_observed < 1:
        raise FailoverInvariantError(
            "supervisor never observed the RESYNCING state")
    chain.verify()
    si_txns = chain.check_si()
    return {
        "evicted": wal.slots_evicted,
        "retained": retained,
        "budget": cfg.retention_budget,
        "eviction_rounds": rounds,
        "resyncs": chain.r1.resyncs + chain.r2.resyncs,
        "si_txns": si_txns,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Replication chaos sweeps: leader-kill failover "
                    "(default), self-healing resync on a cascading "
                    "chain, and slot-eviction under lag")
    parser.add_argument("--mode",
                        choices=("failover", "resync", "resync-source",
                                 "eviction"),
                        default="failover",
                        help="failover: kill the leader at every frame; "
                             "resync: kill the progressing follower at "
                             "every frame and backup chunk; "
                             "resync-source: kill the backup source at "
                             "every installed chunk; eviction: bounded "
                             "retention under a lagging follower")
    parser.add_argument("--stride", type=int, default=1,
                        help="kill at every stride-th eligible event")
    parser.add_argument("--transfers", type=int, default=None)
    parser.add_argument("--accounts", type=int, default=None)
    parser.add_argument("--seed", type=int, default=None)
    args = parser.parse_args(argv)
    if args.mode == "failover":
        cfg = FailoverSweepConfig(stride=args.stride)
        if args.accounts is not None:
            cfg.accounts = args.accounts
        if args.transfers is not None:
            cfg.transfers = args.transfers
        if args.seed is not None:
            cfg.seed = args.seed
        report = run_sweep(cfg)
        print(f"failover: {report.points_tested} kill points over "
              f"{report.total_frames} shipped frames "
              f"({report.points_tripped} leaders killed and fenced, "
              f"{report.uncertain_total} interrupted confirmations — "
              f"{report.uncertain_survived} had replicated in time, "
              f"{report.si_txns_checked} txns SI-checked: 0 violations) "
              f"— all invariants held")
        return 0
    rcfg = ResyncSweepConfig(stride=args.stride)
    if args.accounts is not None:
        rcfg.accounts = args.accounts
    if args.transfers is not None:
        rcfg.transfers = args.transfers
    if args.seed is not None:
        rcfg.seed = args.seed
    if args.mode == "eviction":
        facts = run_eviction_scenario(rcfg)
        print(f"eviction: slot evicted after {facts['eviction_rounds']} "
              f"lagging rounds ({facts['evicted']} evictions, "
              f"{facts['retained']} records retained under budget "
              f"{facts['budget']}), follower healed via "
              f"{facts['resyncs']} resync(s), {facts['si_txns']} txns "
              f"SI-checked: 0 violations — all invariants held")
        return 0
    rcfg.mode = "follower" if args.mode == "resync" else "source"
    report = run_resync_sweep(rcfg)
    print(f"resync[{report.mode}]: {report.points_tested} kill points "
          f"over {report.total_events} progress events "
          f"({report.points_tripped} nodes killed, "
          f"{report.restarts_total} restarts, {report.resyncs_total} "
          f"full resyncs, {report.si_txns_checked} txns SI-checked on "
          f"the leader→replica→replica chain: 0 violations) — all "
          f"invariants held")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
