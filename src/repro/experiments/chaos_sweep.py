"""Chaos sweep: break the connection at every k-th network frame, settle.

The service layer's adversary, the wire twin of
:mod:`repro.experiments.crash_sweep`: one seeded run of a bank-transfer
workload is executed once in *count mode* to learn how many request
frames it sends; the sweep then re-executes the identical run once per
fault point, arming a :class:`~repro.server.chaos.NetCrashPoint` that
breaks the client's connection exactly at the k-th frame.  Fault kinds
cycle through the disruptive set — torn frame, reset before send, reset
after send (the lost-ack window) — so every frame position is eventually
hit by each failure shape as ``k`` advances.

Unlike the crash sweep, the *engine* never dies here: only connections
do.  The oracle is therefore the **full value oracle for both engines**:

* exactly the transfers whose commit was *confirmed* — an acked
  ``COMMIT``, or an ambiguous one that ``TXN_STATUS`` later resolved to
  ``committed`` — are visible;
* the balance total is conserved;
* every orphaned transaction was settled exactly once — sessions drain
  to zero, the lock table drains to zero, no transaction stays active;
* the server still serves a fresh client (liveness).

An ambiguous ``COMMIT`` (the connection died after the request may have
been sent) is never blindly retried: the workload resolves its fate via
``TXN_STATUS`` on a fresh connection and folds the transfer into the
oracle mirror only if the server says ``committed``.

Run it from the command line::

    python -m repro.experiments.chaos_sweep --engine both --stride 10
"""

from __future__ import annotations

import argparse
import contextlib
import time
from dataclasses import dataclass, field

from repro.client.pool import CircuitBreaker, RetryPolicy
from repro.client.remote import RemoteDatabase, RemoteTransaction
from repro.common.errors import (
    CommitUncertainError,
    DeadlineExceededError,
    RemoteError,
    ServiceError,
)
from repro.common.rng import make_rng
from repro.db.catalog import IndexDef
from repro.db.database import Database, EngineKind
from repro.db.schema import ColType, Schema
from repro.server.chaos import (
    DISRUPTIVE_KINDS,
    ChaosPlan,
    NetCrashPoint,
    NetFaultKind,
)
from repro.server.server import DatabaseServer, ServerConfig
from repro.txn.manager import TxnPhase

ACCOUNTS = Schema.of(("id", ColType.INT), ("owner", ColType.STR),
                     ("balance", ColType.FLOAT))


@dataclass
class ChaosSweepConfig:
    """One chaos sweep's parameters (fully determined by the seed)."""

    kind: EngineKind = EngineKind.SIASV
    accounts: int = 8
    transfers: int = 30
    stride: int = 1            # fault every stride-th frame
    seed: int = 11
    initial_balance: float = 100.0
    #: per-call deadline the chaos client sends (generous: the sweep
    #: tests connection faults, not deadline pressure)
    deadline_ms: int = 10_000
    settle_timeout_sec: float = 5.0


@dataclass
class ChaosOutcome:
    """What happened at one fault point."""

    at_frame: int
    kind: NetFaultKind
    tripped: bool              # False once k exceeds the run's frames
    confirmed: int             # transfers folded into the oracle
    failed: int                # transfers lost to the fault
    uncertain: int             # commits resolved via TXN_STATUS
    uncertain_committed: int   # ... of which the server had committed


@dataclass
class ChaosSweepReport:
    """Aggregate over every fault point tested."""

    kind: EngineKind
    total_frames: int
    outcomes: list[ChaosOutcome] = field(default_factory=list)

    @property
    def points_tested(self) -> int:
        return len(self.outcomes)

    @property
    def points_tripped(self) -> int:
        return sum(1 for o in self.outcomes if o.tripped)

    @property
    def uncertain_total(self) -> int:
        return sum(o.uncertain for o in self.outcomes)


class ChaosInvariantError(AssertionError):
    """A settlement invariant failed at a specific fault point."""


@dataclass
class _WorkloadState:
    """Oracle state the workload maintains as commits are confirmed."""

    mirror: dict[int, float] = field(default_factory=dict)
    confirmed: int = 0
    failed: int = 0
    uncertain: int = 0
    uncertain_committed: int = 0


def _start_server(cfg: ChaosSweepConfig) -> DatabaseServer:
    db = Database.on_flash(cfg.kind)
    db.create_table("accounts", ACCOUNTS, indexes=[
        IndexDef("pk", ("id",), unique=True),
        IndexDef("by_owner", ("owner",)),
    ])
    server = DatabaseServer(db, ServerConfig(
        port=0, idle_timeout_sec=30.0, drain_timeout_sec=2.0))
    server.start_in_background()
    return server


def _chaos_client(server: DatabaseServer,
                  cfg: ChaosSweepConfig,
                  plan: ChaosPlan) -> RemoteDatabase:
    host, port = server.address  # type: ignore[misc]
    # Deterministic backoff (no wall-clock jitter), generous breaker: one
    # injected fault must never trip the sweep into fail-fast mode.
    retry = RetryPolicy(base_delay_sec=0.001, max_delay_sec=0.01,
                        jitter=False)
    breaker = CircuitBreaker(failure_threshold=10, reset_timeout_sec=0.05)
    return RemoteDatabase(host, port, pool_size=2, retry=retry,
                          breaker=breaker, deadline_ms=cfg.deadline_ms,
                          chaos=plan)


def _setup_accounts(server: DatabaseServer, cfg: ChaosSweepConfig,
                    state: _WorkloadState) -> None:
    """Seed balances through a clean client (setup is not under test)."""
    host, port = server.address  # type: ignore[misc]
    with RemoteDatabase(host, port, pool_size=1) as clean:
        txn = clean.begin()
        clean.bulk_insert(txn, "accounts", [
            (i, f"acct-{i}", cfg.initial_balance)
            for i in range(cfg.accounts)])
        clean.commit(txn)
    for i in range(cfg.accounts):
        state.mirror[i] = cfg.initial_balance


def _run_workload(remote: RemoteDatabase, cfg: ChaosSweepConfig,
                  state: _WorkloadState) -> None:
    """Seeded transfers through the chaos client; mirror on confirmation.

    A transfer is folded into the oracle only when its commit is
    *confirmed*: the commit call returned, or its uncertain fate resolved
    to ``committed`` via ``TXN_STATUS``.  Connection deaths anywhere else
    abandon the transaction — the server aborts the orphan on disconnect.
    """
    rng = make_rng(cfg.seed, "chaos-sweep", "workload")
    for _ in range(cfg.transfers):
        src = rng.randrange(cfg.accounts)
        dst = (src + 1 + rng.randrange(cfg.accounts - 1)) % cfg.accounts
        amount = float(rng.randrange(1, 10))
        txn: RemoteTransaction | None = None
        try:
            txn = remote.begin()
            (src_ref, src_row), = remote.lookup(txn, "accounts", "pk", src)
            (dst_ref, dst_row), = remote.lookup(txn, "accounts", "pk", dst)
            remote.update(txn, "accounts", src_ref,
                          (src, src_row[1], src_row[2] - amount))
            remote.update(txn, "accounts", dst_ref,
                          (dst, dst_row[1], dst_row[2] + amount))
            remote.commit(txn)
        except CommitUncertainError as exc:
            state.uncertain += 1
            fate = remote.resolve_commit(exc.txid,
                                         timeout_sec=cfg.settle_timeout_sec)
            if fate == "committed":
                state.uncertain_committed += 1
                state.mirror[src] -= amount
                state.mirror[dst] += amount
                state.confirmed += 1
            elif fate in ("aborted", "unknown"):
                state.failed += 1
            else:
                raise ChaosInvariantError(
                    f"uncertain commit of txn {exc.txid} never settled: "
                    f"fate {fate!r}")
            continue
        except (ConnectionError, OSError, DeadlineExceededError,
                RemoteError, ServiceError):
            # the fault hit before COMMIT was attempted: the transfer is
            # simply lost, and the server aborts the orphan on disconnect
            state.failed += 1
            if txn is not None and txn.phase is TxnPhase.ACTIVE:
                with contextlib.suppress(Exception):
                    remote.abort(txn)
            continue
        state.mirror[src] -= amount
        state.mirror[dst] += amount
        state.confirmed += 1


def _settle(server: DatabaseServer, cfg: ChaosSweepConfig,
            at_frame: int) -> None:
    """After the clients are gone, the server must be quiescent."""
    deadline = time.monotonic() + cfg.settle_timeout_sec
    while True:
        commits, aborts, active = server.db.txn_mgr.counters()
        quiet = (server.sessions.count() == 0 and active == 0
                 and server.db.txn_mgr.locks.held_count() == 0)
        if quiet:
            return
        if time.monotonic() >= deadline:
            raise ChaosInvariantError(
                f"server did not settle after fault at frame {at_frame}: "
                f"{server.sessions.count()} sessions, {active} active "
                f"txns, {server.db.txn_mgr.locks.held_count()} locks held")
        time.sleep(0.01)


def _verify(server: DatabaseServer, cfg: ChaosSweepConfig,
            state: _WorkloadState) -> None:
    """Full value oracle through a fresh, fault-free client."""
    host, port = server.address  # type: ignore[misc]
    with RemoteDatabase(host, port, pool_size=1) as clean:
        txn = clean.begin()
        rows = {row[0]: row for _ref, row in clean.scan(txn, "accounts")}
        if set(rows) != set(state.mirror):
            raise ChaosInvariantError(
                f"row ids {sorted(rows)} != confirmed ids "
                f"{sorted(state.mirror)}")
        for acct_id, expected in state.mirror.items():
            got = rows[acct_id][2]
            if got != expected:
                raise ChaosInvariantError(
                    f"account {acct_id}: balance {got} != confirmed "
                    f"{expected} (a transfer was lost or double-applied)")
        total = sum(row[2] for row in rows.values())
        if total != cfg.initial_balance * cfg.accounts:
            raise ChaosInvariantError(
                f"money not conserved: {total} != "
                f"{cfg.initial_balance * cfg.accounts}")
        for acct_id, row in rows.items():
            hits = clean.lookup(txn, "accounts", "pk", acct_id)
            if len(hits) != 1 or hits[0][1] != row:
                raise ChaosInvariantError(
                    f"pk index disagrees with scan for id {acct_id}: "
                    f"{hits!r} vs {row!r}")
        clean.commit(txn)
        # liveness: the server still accepts new committed work
        ids = sorted(rows)
        a, b = ids[0], ids[1]
        txn = clean.begin()
        (a_ref, a_row), = clean.lookup(txn, "accounts", "pk", a)
        (b_ref, b_row), = clean.lookup(txn, "accounts", "pk", b)
        clean.update(txn, "accounts", a_ref, (a, a_row[1], a_row[2] - 1.0))
        clean.update(txn, "accounts", b_ref, (b, b_row[1], b_row[2] + 1.0))
        clean.commit(txn)


def run_one(cfg: ChaosSweepConfig, at_frame: int,
            kind: NetFaultKind) -> ChaosOutcome:
    """Run the seeded workload with a network fault armed at ``at_frame``."""
    point = NetCrashPoint(at_event=at_frame, kind=kind)
    plan = ChaosPlan(crash_point=point)
    server = _start_server(cfg)
    state = _WorkloadState()
    try:
        _setup_accounts(server, cfg, state)
        remote = _chaos_client(server, cfg, plan)
        try:
            _run_workload(remote, cfg, state)
        finally:
            remote.close()
        point.disarm()
        _settle(server, cfg, at_frame)
        _verify(server, cfg, state)
        _settle(server, cfg, at_frame)  # the oracle client left cleanly too
    finally:
        server.stop_in_background()
    return ChaosOutcome(
        at_frame=at_frame,
        kind=kind,
        tripped=point.tripped,
        confirmed=state.confirmed,
        failed=state.failed,
        uncertain=state.uncertain,
        uncertain_committed=state.uncertain_committed,
    )


def count_frames(cfg: ChaosSweepConfig) -> int:
    """Count mode: how many frames does one fault-free run send?"""
    point = NetCrashPoint(at_event=0)  # never fires, only counts
    plan = ChaosPlan(crash_point=point)
    server = _start_server(cfg)
    try:
        state = _WorkloadState()
        _setup_accounts(server, cfg, state)
        remote = _chaos_client(server, cfg, plan)
        try:
            _run_workload(remote, cfg, state)
        finally:
            remote.close()
        if state.confirmed != cfg.transfers:
            raise ChaosInvariantError(
                f"count mode lost transfers without faults: "
                f"{state.confirmed}/{cfg.transfers}")
    finally:
        server.stop_in_background()
    return point.events_seen


def run_sweep(cfg: ChaosSweepConfig) -> ChaosSweepReport:
    """Fault every ``stride``-th frame of the run; verify each time.

    Raises :class:`ChaosInvariantError` (with the fault point in the
    message) the moment any settlement invariant fails.
    """
    total = count_frames(cfg)
    report = ChaosSweepReport(kind=cfg.kind, total_frames=total)
    for k in range(1, total + 1, cfg.stride):
        kind = DISRUPTIVE_KINDS[k % len(DISRUPTIVE_KINDS)]
        try:
            outcome = run_one(cfg, k, kind)
        except ChaosInvariantError as exc:
            raise ChaosInvariantError(
                f"[{cfg.kind.name} {kind.value} at frame {k}] "
                f"{exc}") from exc
        report.outcomes.append(outcome)
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Chaos sweep: network faults against the service layer")
    parser.add_argument("--engine", choices=["siasv", "si", "both"],
                        default="both")
    parser.add_argument("--stride", type=int, default=1,
                        help="fault at every stride-th network frame")
    parser.add_argument("--transfers", type=int, default=30)
    parser.add_argument("--accounts", type=int, default=8)
    parser.add_argument("--seed", type=int, default=11)
    args = parser.parse_args(argv)
    kinds = {"siasv": [EngineKind.SIASV], "si": [EngineKind.SI],
             "both": [EngineKind.SIASV, EngineKind.SI]}[args.engine]
    for kind in kinds:
        cfg = ChaosSweepConfig(kind=kind, accounts=args.accounts,
                               transfers=args.transfers, stride=args.stride,
                               seed=args.seed)
        report = run_sweep(cfg)
        print(f"{kind.name:6s}: {report.points_tested} fault points over "
              f"{report.total_frames} frames "
              f"({report.points_tripped} tripped, "
              f"{report.uncertain_total} ambiguous commits resolved) — "
              f"all invariants held")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
