"""Chaos sweep: break the connection at every k-th network frame, settle.

The service layer's adversary, the wire twin of
:mod:`repro.experiments.crash_sweep`: one seeded run of a bank-transfer
workload is executed once in *count mode* to learn how many request
frames it sends; the sweep then re-executes the identical run once per
fault point, arming a :class:`~repro.server.chaos.NetCrashPoint` that
breaks the client's connection exactly at the k-th frame.  Fault kinds
cycle through the disruptive set — torn frame, reset before send, reset
after send (the lost-ack window) — so every frame position is eventually
hit by each failure shape as ``k`` advances.

Unlike the crash sweep, the *engine* never dies here: only connections
do.  The oracle is therefore the **full value oracle for both engines**:

* exactly the transfers whose commit was *confirmed* — an acked
  ``COMMIT``, or an ambiguous one that ``TXN_STATUS`` later resolved to
  ``committed`` — are visible;
* the balance total is conserved;
* every orphaned transaction was settled exactly once — sessions drain
  to zero, the lock table drains to zero, no transaction stays active;
* the server still serves a fresh client (liveness).

An ambiguous ``COMMIT`` (the connection died after the request may have
been sent) is never blindly retried: the workload resolves its fate via
``TXN_STATUS`` on a fresh connection and folds the transfer into the
oracle mirror only if the server says ``committed``.

The **shard-fault mode** (``--cluster``) aims the same adversary at the
sharded cluster: a 2-shard thread-mode :class:`ShardSupervisor` behind a
:class:`ClusterRouter`, with the crash point armed on the *router's* links
to the shards — so the k-th router→shard frame dies mid-2PC (mid-PREPARE,
mid-decision-push, in the lost-ack window of either).  ``--fault-mode
crash`` additionally power-fails one shard at the first transfer boundary
after the fault (kill, WAL recovery, restart on the same port, then
:meth:`ClusterRouter.resolve_in_doubt`).  The oracle is the atomic-commit
contract: exactly the *acked* transfers are visible through the router,
money is conserved across shards, every in-doubt prepared transaction is
settled exactly once (presumed abort or the logged decision), and the
cluster drains to zero active/prepared/locked everywhere.

``--si-check`` adds a **second oracle** to the cluster mode: every
client operation is recorded into a history (see
:mod:`repro.experiments.si_check`), a concurrent cross-shard reader
races the transfers, and the black-box SI checker replays the history
at each fault point.  The settled-state value oracle proves the *end*
state; the checker proves every *mid-flight snapshot* a reader observed
was one consistent prefix of the commit order.  With
``--per-shard-snapshots`` (the legacy lazy-snapshot mode) the sweep
inverts: it fails unless the checker catches fractured reads.

Run it from the command line::

    python -m repro.experiments.chaos_sweep --engine both --stride 10
    python -m repro.experiments.chaos_sweep --cluster --fault-mode crash
    python -m repro.experiments.chaos_sweep --cluster --si-check
    python -m repro.experiments.chaos_sweep --cluster --si-check \
        --per-shard-snapshots --stride 9
"""

from __future__ import annotations

import argparse
import contextlib
import threading
import time
from dataclasses import dataclass, field

from repro.client.pool import CircuitBreaker, RetryPolicy
from repro.client.remote import RemoteDatabase, RemoteTransaction
from repro.cluster import (
    ClusterRouter,
    RouterConfig,
    ShardSupervisor,
    SupervisorConfig,
)
from repro.common.errors import (
    CommitUncertainError,
    DeadlineExceededError,
    RemoteError,
    SerializationError,
    ServiceError,
)
from repro.common.rng import make_rng
from repro.db.catalog import IndexDef
from repro.db.database import Database, EngineKind
from repro.db.schema import ColType, Schema
from repro.experiments.si_check import (
    History,
    RecordingDatabase,
    check_history,
)
from repro.server.chaos import (
    DISRUPTIVE_KINDS,
    ChaosPlan,
    NetCrashPoint,
    NetFaultKind,
)
from repro.server.server import DatabaseServer, ServerConfig
from repro.txn.manager import TxnPhase

ACCOUNTS = Schema.of(("id", ColType.INT), ("owner", ColType.STR),
                     ("balance", ColType.FLOAT))


@dataclass
class ChaosSweepConfig:
    """One chaos sweep's parameters (fully determined by the seed)."""

    kind: EngineKind = EngineKind.SIASV
    accounts: int = 8
    transfers: int = 30
    stride: int = 1            # fault every stride-th frame
    seed: int = 11
    initial_balance: float = 100.0
    #: per-call deadline the chaos client sends (generous: the sweep
    #: tests connection faults, not deadline pressure)
    deadline_ms: int = 10_000
    settle_timeout_sec: float = 5.0


@dataclass
class ChaosOutcome:
    """What happened at one fault point."""

    at_frame: int
    kind: NetFaultKind
    tripped: bool              # False once k exceeds the run's frames
    confirmed: int             # transfers folded into the oracle
    failed: int                # transfers lost to the fault
    uncertain: int             # commits resolved via TXN_STATUS
    uncertain_committed: int   # ... of which the server had committed


@dataclass
class ChaosSweepReport:
    """Aggregate over every fault point tested."""

    kind: EngineKind
    total_frames: int
    outcomes: list[ChaosOutcome] = field(default_factory=list)

    @property
    def points_tested(self) -> int:
        return len(self.outcomes)

    @property
    def points_tripped(self) -> int:
        return sum(1 for o in self.outcomes if o.tripped)

    @property
    def uncertain_total(self) -> int:
        return sum(o.uncertain for o in self.outcomes)


class ChaosInvariantError(AssertionError):
    """A settlement invariant failed at a specific fault point."""


@dataclass
class _WorkloadState:
    """Oracle state the workload maintains as commits are confirmed."""

    mirror: dict[int, float] = field(default_factory=dict)
    confirmed: int = 0
    failed: int = 0
    uncertain: int = 0
    uncertain_committed: int = 0


def _start_server(cfg: ChaosSweepConfig) -> DatabaseServer:
    db = Database.on_flash(cfg.kind)
    db.create_table("accounts", ACCOUNTS, indexes=[
        IndexDef("pk", ("id",), unique=True),
        IndexDef("by_owner", ("owner",)),
    ])
    server = DatabaseServer(db, ServerConfig(
        port=0, idle_timeout_sec=30.0, drain_timeout_sec=2.0))
    server.start_in_background()
    return server


def _chaos_client(server: DatabaseServer,
                  cfg: ChaosSweepConfig,
                  plan: ChaosPlan) -> RemoteDatabase:
    host, port = server.address  # type: ignore[misc]
    # Deterministic backoff (no wall-clock jitter), generous breaker: one
    # injected fault must never trip the sweep into fail-fast mode.
    retry = RetryPolicy(base_delay_sec=0.001, max_delay_sec=0.01,
                        jitter=False)
    breaker = CircuitBreaker(failure_threshold=10, reset_timeout_sec=0.05)
    return RemoteDatabase(host, port, pool_size=2, retry=retry,
                          breaker=breaker, deadline_ms=cfg.deadline_ms,
                          chaos=plan)


def _setup_accounts(server: DatabaseServer, cfg: ChaosSweepConfig,
                    state: _WorkloadState) -> None:
    """Seed balances through a clean client (setup is not under test)."""
    host, port = server.address  # type: ignore[misc]
    with RemoteDatabase(host, port, pool_size=1) as clean:
        txn = clean.begin()
        clean.bulk_insert(txn, "accounts", [
            (i, f"acct-{i}", cfg.initial_balance)
            for i in range(cfg.accounts)])
        clean.commit(txn)
    for i in range(cfg.accounts):
        state.mirror[i] = cfg.initial_balance


def _run_workload(remote: RemoteDatabase, cfg: ChaosSweepConfig,
                  state: _WorkloadState,
                  on_transfer_done=None) -> None:
    """Seeded transfers through the chaos client; mirror on confirmation.

    A transfer is folded into the oracle only when its commit is
    *confirmed*: the commit call returned, or its uncertain fate resolved
    to ``committed`` via ``TXN_STATUS``.  Connection deaths anywhere else
    abandon the transaction — the server aborts the orphan on disconnect.

    ``on_transfer_done`` runs after every transfer settles client-side
    (confirmed, failed or resolved) — the shard-fault sweep's hook for
    power-failing a shard at a deterministic transfer boundary.
    """
    rng = make_rng(cfg.seed, "chaos-sweep", "workload")
    for _ in range(cfg.transfers):
        src = rng.randrange(cfg.accounts)
        dst = (src + 1 + rng.randrange(cfg.accounts - 1)) % cfg.accounts
        amount = float(rng.randrange(1, 10))
        txn: RemoteTransaction | None = None
        try:
            try:
                txn = remote.begin()
                src_hits = remote.lookup(txn, "accounts", "pk", src)
                dst_hits = remote.lookup(txn, "accounts", "pk", dst)
                if len(src_hits) != 1 or len(dst_hits) != 1:
                    # a snapshot too stale to hold the setup rows (e.g. a
                    # fault starved the read-timestamp refresh) cannot
                    # fund a transfer; treat it like any other lost one —
                    # the recorded misses still reach the SI checker
                    raise ServiceError(
                        f"accounts {src}/{dst} not visible: "
                        f"{len(src_hits)}/{len(dst_hits)} hits")
                (src_ref, src_row), = src_hits
                (dst_ref, dst_row), = dst_hits
                remote.update(txn, "accounts", src_ref,
                              (src, src_row[1], src_row[2] - amount))
                remote.update(txn, "accounts", dst_ref,
                              (dst, dst_row[1], dst_row[2] + amount))
                remote.commit(txn)
            except CommitUncertainError as exc:
                state.uncertain += 1
                fate = remote.resolve_commit(
                    exc.txid, timeout_sec=cfg.settle_timeout_sec)
                if fate == "committed":
                    state.uncertain_committed += 1
                    state.mirror[src] -= amount
                    state.mirror[dst] += amount
                    state.confirmed += 1
                elif fate in ("aborted", "unknown"):
                    state.failed += 1
                else:
                    raise ChaosInvariantError(
                        f"uncertain commit of txn {exc.txid} never "
                        f"settled: fate {fate!r}")
                continue
            except (ConnectionError, OSError, DeadlineExceededError,
                    RemoteError, ServiceError, SerializationError):
                # the fault hit before COMMIT was attempted, or the
                # transaction began on a read timestamp held down by an
                # in-flight 2PC decision and first-updater-wins aborted
                # its write: either way the transfer is simply lost, and
                # the server aborts the orphan on disconnect
                state.failed += 1
                if txn is not None and txn.phase is TxnPhase.ACTIVE:
                    with contextlib.suppress(Exception):
                        remote.abort(txn)
                continue
            state.mirror[src] -= amount
            state.mirror[dst] += amount
            state.confirmed += 1
        finally:
            if on_transfer_done is not None:
                on_transfer_done()


def _settle(server: DatabaseServer, cfg: ChaosSweepConfig,
            at_frame: int) -> None:
    """After the clients are gone, the server must be quiescent."""
    deadline = time.monotonic() + cfg.settle_timeout_sec
    while True:
        commits, aborts, active = server.db.txn_mgr.counters()
        quiet = (server.sessions.count() == 0 and active == 0
                 and server.db.txn_mgr.locks.held_count() == 0)
        if quiet:
            return
        if time.monotonic() >= deadline:
            raise ChaosInvariantError(
                f"server did not settle after fault at frame {at_frame}: "
                f"{server.sessions.count()} sessions, {active} active "
                f"txns, {server.db.txn_mgr.locks.held_count()} locks held")
        time.sleep(0.01)


def _verify(server: DatabaseServer, cfg: ChaosSweepConfig,
            state: _WorkloadState) -> None:
    """Full value oracle through a fresh, fault-free client."""
    host, port = server.address  # type: ignore[misc]
    with RemoteDatabase(host, port, pool_size=1) as clean:
        txn = clean.begin()
        rows = {row[0]: row for _ref, row in clean.scan(txn, "accounts")}
        if set(rows) != set(state.mirror):
            raise ChaosInvariantError(
                f"row ids {sorted(rows)} != confirmed ids "
                f"{sorted(state.mirror)}")
        for acct_id, expected in state.mirror.items():
            got = rows[acct_id][2]
            if got != expected:
                raise ChaosInvariantError(
                    f"account {acct_id}: balance {got} != confirmed "
                    f"{expected} (a transfer was lost or double-applied)")
        total = sum(row[2] for row in rows.values())
        if total != cfg.initial_balance * cfg.accounts:
            raise ChaosInvariantError(
                f"money not conserved: {total} != "
                f"{cfg.initial_balance * cfg.accounts}")
        for acct_id, row in rows.items():
            hits = clean.lookup(txn, "accounts", "pk", acct_id)
            if len(hits) != 1 or hits[0][1] != row:
                raise ChaosInvariantError(
                    f"pk index disagrees with scan for id {acct_id}: "
                    f"{hits!r} vs {row!r}")
        clean.commit(txn)
        # liveness: the server still accepts new committed work
        ids = sorted(rows)
        a, b = ids[0], ids[1]
        txn = clean.begin()
        (a_ref, a_row), = clean.lookup(txn, "accounts", "pk", a)
        (b_ref, b_row), = clean.lookup(txn, "accounts", "pk", b)
        clean.update(txn, "accounts", a_ref, (a, a_row[1], a_row[2] - 1.0))
        clean.update(txn, "accounts", b_ref, (b, b_row[1], b_row[2] + 1.0))
        clean.commit(txn)


def run_one(cfg: ChaosSweepConfig, at_frame: int,
            kind: NetFaultKind) -> ChaosOutcome:
    """Run the seeded workload with a network fault armed at ``at_frame``."""
    point = NetCrashPoint(at_event=at_frame, kind=kind)
    plan = ChaosPlan(crash_point=point)
    server = _start_server(cfg)
    state = _WorkloadState()
    try:
        _setup_accounts(server, cfg, state)
        remote = _chaos_client(server, cfg, plan)
        try:
            _run_workload(remote, cfg, state)
        finally:
            remote.close()
        point.disarm()
        _settle(server, cfg, at_frame)
        _verify(server, cfg, state)
        _settle(server, cfg, at_frame)  # the oracle client left cleanly too
    finally:
        server.stop_in_background()
    return ChaosOutcome(
        at_frame=at_frame,
        kind=kind,
        tripped=point.tripped,
        confirmed=state.confirmed,
        failed=state.failed,
        uncertain=state.uncertain,
        uncertain_committed=state.uncertain_committed,
    )


def count_frames(cfg: ChaosSweepConfig) -> int:
    """Count mode: how many frames does one fault-free run send?"""
    point = NetCrashPoint(at_event=0)  # never fires, only counts
    plan = ChaosPlan(crash_point=point)
    server = _start_server(cfg)
    try:
        state = _WorkloadState()
        _setup_accounts(server, cfg, state)
        remote = _chaos_client(server, cfg, plan)
        try:
            _run_workload(remote, cfg, state)
        finally:
            remote.close()
        if state.confirmed != cfg.transfers:
            raise ChaosInvariantError(
                f"count mode lost transfers without faults: "
                f"{state.confirmed}/{cfg.transfers}")
    finally:
        server.stop_in_background()
    return point.events_seen


def run_sweep(cfg: ChaosSweepConfig) -> ChaosSweepReport:
    """Fault every ``stride``-th frame of the run; verify each time.

    Raises :class:`ChaosInvariantError` (with the fault point in the
    message) the moment any settlement invariant fails.
    """
    total = count_frames(cfg)
    report = ChaosSweepReport(kind=cfg.kind, total_frames=total)
    for k in range(1, total + 1, cfg.stride):
        kind = DISRUPTIVE_KINDS[k % len(DISRUPTIVE_KINDS)]
        try:
            outcome = run_one(cfg, k, kind)
        except ChaosInvariantError as exc:
            raise ChaosInvariantError(
                f"[{cfg.kind.name} {kind.value} at frame {k}] "
                f"{exc}") from exc
        report.outcomes.append(outcome)
    return report


# -- shard-fault mode (cluster) ----------------------------------------------


@dataclass
class ClusterChaosConfig:
    """One shard-fault sweep's parameters (fully determined by the seed).

    The crash point counts *router→shard* frames, so ``stride`` walks the
    cluster's internal conversation — BEGINs, lookups, 2PC PREPAREs and
    decision pushes — not the client's.  Setup traffic is excluded (the
    point is disarmed around it), so frame ``k`` means the k-th frame the
    workload itself moves.
    """

    shards: int = 2
    fault_mode: str = "link"   # "link" | "crash" (power-fail a shard too)
    accounts: int = 8
    transfers: int = 30
    stride: int = 1
    seed: int = 11
    initial_balance: float = 100.0
    deadline_ms: int = 10_000
    #: crash mode recovers a whole shard inside this window
    settle_timeout_sec: float = 8.0
    #: record every client op and run the black-box SI checker per point
    #: (a *second* oracle: the value oracle sees the settled end state,
    #: the checker sees every mid-flight snapshot a reader ever observed)
    si_check: bool = False
    #: legacy mode — lazy per-shard snapshots, no cluster-wide read
    #: timestamp.  With ``si_check`` the sweep then *expects* the checker
    #: to catch fractured reads (and fails if it does not: the reproducer
    #: and the checker keep each other honest).
    per_shard_snapshots: bool = False

    def validate(self) -> None:
        """Raise on inconsistent settings."""
        if self.shards < 2:
            raise ValueError("shard-fault sweep needs >= 2 shards")
        if self.fault_mode not in ("link", "crash"):
            raise ValueError(f"unknown fault mode {self.fault_mode!r}")
        if self.per_shard_snapshots and not self.si_check:
            raise ValueError(
                "per-shard-snapshots mode is only useful under --si-check "
                "(the value oracle alone cannot see fractured snapshots)")


@dataclass
class ClusterChaosOutcome:
    """What happened at one shard-fault point."""

    at_frame: int
    kind: NetFaultKind
    tripped: bool
    confirmed: int
    failed: int
    killed_shard: int | None   # crash mode: the shard that power-failed
    recovered_in_doubt: int    # prepared txns reinstated by WAL recovery
    resolved_committed: int    # in-doubt settled by the logged decision
    resolved_aborted: int      # in-doubt settled by presumed abort
    si_txns: int = 0           # --si-check: transactions recorded
    si_violations: int = 0     # --si-check: SI violations the checker found


@dataclass
class ClusterChaosReport:
    """Aggregate over every shard-fault point tested."""

    shards: int
    fault_mode: str
    total_frames: int
    outcomes: list[ClusterChaosOutcome] = field(default_factory=list)

    @property
    def points_tested(self) -> int:
        return len(self.outcomes)

    @property
    def points_tripped(self) -> int:
        return sum(1 for o in self.outcomes if o.tripped)

    @property
    def shards_killed(self) -> int:
        return sum(1 for o in self.outcomes if o.killed_shard is not None)

    @property
    def in_doubt_settled(self) -> int:
        return sum(o.resolved_committed + o.resolved_aborted
                   for o in self.outcomes)

    @property
    def in_doubt_recovered(self) -> int:
        return sum(o.recovered_in_doubt for o in self.outcomes)

    @property
    def si_txns_checked(self) -> int:
        return sum(o.si_txns for o in self.outcomes)

    @property
    def si_violations_total(self) -> int:
        return sum(o.si_violations for o in self.outcomes)


def _start_cluster(cfg: ClusterChaosConfig,
                   plan: ChaosPlan) -> tuple[ShardSupervisor, ClusterRouter]:
    """Thread-mode shards behind a router whose shard links carry ``plan``."""
    sup = ShardSupervisor(SupervisorConfig(
        shards=cfg.shards, idle_timeout_sec=30.0, drain_timeout_sec=2.0))
    sup.start()
    router = ClusterRouter(sup.addresses, RouterConfig(
        port=0, idle_timeout_sec=30.0, drain_timeout_sec=2.0,
        retry=RetryPolicy(base_delay_sec=0.001, max_delay_sec=0.01,
                          jitter=False),
        resolve_timeout_sec=cfg.settle_timeout_sec,
        per_shard_snapshots=cfg.per_shard_snapshots,
        chaos=plan))
    try:
        router.start_in_background()
    except BaseException:
        sup.stop()
        raise
    return sup, router


def _setup_cluster_accounts(router: ClusterRouter, cfg: ClusterChaosConfig,
                            state: _WorkloadState) -> None:
    """Create and seed ``accounts`` through the router, one row per
    INSERT so round-robin placement stripes accounts across shards —
    that striping is what makes the transfers multi-shard 2PC."""
    host, port = router.address  # type: ignore[misc]
    with RemoteDatabase(host, port, pool_size=1) as clean:
        clean.create_table("accounts", ACCOUNTS, indexes=[
            IndexDef("pk", ("id",), unique=True),
            IndexDef("by_owner", ("owner",)),
        ])
        txn = clean.begin()
        for i in range(cfg.accounts):
            clean.insert(txn, "accounts", (i, f"acct-{i}",
                                           cfg.initial_balance))
        clean.commit(txn)
    for i in range(cfg.accounts):
        state.mirror[i] = cfg.initial_balance


def _router_client(router: ClusterRouter,
                   cfg: ClusterChaosConfig) -> RemoteDatabase:
    """Client→router link is clean: the faults live behind the router."""
    host, port = router.address  # type: ignore[misc]
    retry = RetryPolicy(base_delay_sec=0.001, max_delay_sec=0.01,
                        jitter=False)
    breaker = CircuitBreaker(failure_threshold=20, reset_timeout_sec=0.05)
    return RemoteDatabase(host, port, pool_size=2, retry=retry,
                          breaker=breaker, deadline_ms=cfg.deadline_ms)


def _settle_cluster(router: ClusterRouter, sup: ShardSupervisor,
                    cfg: ClusterChaosConfig, at_frame: int) -> None:
    """Quiescence across the whole cluster: no router sessions, on every
    shard no active transaction, no held lock, no in-doubt prepared
    transaction left unsettled — and the router can reach every shard
    again (a kill opens the router's per-endpoint circuit breaker; the
    fan-out PING drives its half-open probe so the oracle's clean client
    never lands in the cooldown window)."""
    deadline = time.monotonic() + cfg.settle_timeout_sec
    host, port = router.address  # type: ignore[misc]
    while True:
        noisy: list[str] = []
        if router.sessions.count():
            noisy.append(f"router: {router.sessions.count()} sessions")
        for i in range(cfg.shards):
            mgr = sup.database(i).txn_mgr
            _commits, _aborts, active = mgr.counters()
            locks = mgr.locks.held_count()
            prepared = len(mgr.prepared)
            if active or locks or prepared:
                noisy.append(f"shard {i}: {active} active, {locks} locks, "
                             f"{prepared} in-doubt")
        if not noisy:
            # probe with a throwaway client so its own router session is
            # gone before the next quiescence reading
            try:
                with RemoteDatabase(host, port, pool_size=1) as probe:
                    probe.ping()
                return
            except Exception as exc:
                noisy.append(f"router→shard fan-out: {exc}")
        if time.monotonic() >= deadline:
            raise ChaosInvariantError(
                f"cluster did not settle after fault at frame {at_frame}: "
                + "; ".join(noisy))
        time.sleep(0.01)


def _si_scanner(router: ClusterRouter, cfg: ClusterChaosConfig,
                history: History, transfer_event: threading.Event,
                stop: threading.Event) -> None:
    """Concurrent cross-shard reader: the fractured-read witness.

    Each iteration reads the shard-0 accounts, *waits for a transfer to
    commit*, then reads the shard-1 accounts — all inside one global
    transaction.  With lazy per-shard snapshots the second half begins
    on shard 1 only after newer commits landed, so any cross-shard
    transfer in the gap is seen half-applied; with the cluster-wide
    read timestamp the late BEGIN pins to the same snapshot and the
    reads stay whole.  The sweep's settled-state value oracle can never
    see this — only a reader racing the writer can, which is exactly
    what the recorded history hands the checker.

    Faults are expected company here (the scanner shares the wounded
    router links): any error abandons the iteration, and an aborted
    transaction carries no checker obligation.
    """
    remote = RecordingDatabase(_router_client(router, cfg), history,
                               session="scanner")
    # round-robin placement: account i lives on shard i % shards
    first = [i for i in range(cfg.accounts) if i % cfg.shards == 0]
    rest = [i for i in range(cfg.accounts) if i % cfg.shards != 0]
    try:
        while not stop.is_set():
            txn = None
            try:
                txn = remote.begin()
                for i in first:
                    remote.lookup(txn, "accounts", "pk", i)
                transfer_event.clear()
                transfer_event.wait(0.05)
                for i in rest:
                    remote.lookup(txn, "accounts", "pk", i)
                remote.commit(txn)
            except Exception:
                if txn is not None:
                    with contextlib.suppress(Exception):
                        remote.abort(txn)
    finally:
        remote.close()


def run_cluster_one(cfg: ClusterChaosConfig, at_frame: int,
                    kind: NetFaultKind) -> ClusterChaosOutcome:
    """One seeded run with a router→shard fault armed at ``at_frame``."""
    point = NetCrashPoint(at_event=at_frame, kind=kind)
    point.disarm()                      # setup frames are not under test
    plan = ChaosPlan(crash_point=point)
    sup, router = _start_cluster(cfg, plan)
    state = _WorkloadState()
    target = at_frame % cfg.shards
    crash_log: dict = {"killed": None, "recovered_in_doubt": 0,
                       "resolved": {}}
    workload_over = threading.Event()
    history = History() if cfg.si_check else None
    transfer_event = threading.Event()
    scanner_thread: threading.Thread | None = None
    si_txns = si_violations = 0

    def killer() -> None:
        # the moment the link fault fires, power-fail a shard — racing the
        # router's own inline recovery, so the kill lands mid-2PC whenever
        # frame k is a PREPARE or a decision push.  The shard then comes
        # back via WAL recovery (prepared transactions reinstated
        # in-doubt) and the coordinator settles the leftovers.
        while not point.tripped:
            if workload_over.wait(0.001):
                return
        crash_log["killed"] = target
        sup.kill_shard(target)
        report = sup.restart_shard(target)
        crash_log["recovered_in_doubt"] = (
            report.in_doubt_txns if report is not None else 0)
        crash_log["resolved"] = router.resolve_in_doubt()

    kill_thread: threading.Thread | None = None
    if cfg.fault_mode == "crash":
        kill_thread = threading.Thread(target=killer, daemon=True,
                                       name="chaos-shard-killer")
        kill_thread.start()
    try:
        _setup_cluster_accounts(router, cfg, state)
        point.arm()
        remote = _router_client(router, cfg)
        on_done = None
        if history is not None:
            for i in range(cfg.accounts):
                history.record_initial(
                    f"accounts/{i}", [i, f"acct-{i}", cfg.initial_balance])
            remote = RecordingDatabase(remote, history, session="w0")
            on_done = transfer_event.set
            scanner_thread = threading.Thread(
                target=_si_scanner,
                args=(router, cfg, history, transfer_event, workload_over),
                daemon=True, name="chaos-si-scanner")
            scanner_thread.start()
        try:
            _run_workload(remote, cfg, state, on_transfer_done=on_done)
        finally:
            remote.close()
        point.disarm()
        workload_over.set()
        if scanner_thread is not None:
            # the scanner holds a router session; settle needs it gone.
            # Its last call may still be draining a deadline-bounded
            # request against the just-killed shard, so allow one full
            # client deadline on top of the settle window before
            # declaring it wedged.
            scanner_thread.join(
                timeout=cfg.settle_timeout_sec + cfg.deadline_ms / 1000.0)
            if scanner_thread.is_alive():
                raise ChaosInvariantError(
                    f"SI scanner wedged after fault at frame {at_frame}")
        if kill_thread is not None:
            kill_thread.join(timeout=cfg.settle_timeout_sec + 10.0)
            if kill_thread.is_alive():
                raise ChaosInvariantError(
                    f"shard killer wedged after fault at frame {at_frame}")
        resolved = router.resolve_in_doubt()
        for key in ("committed", "aborted"):
            crash_log["resolved"][key] = (
                crash_log["resolved"].get(key, 0) + resolved[key])
        if router.coordinator_log.pending_decisions():
            raise ChaosInvariantError(
                f"fault at frame {at_frame} left commit decisions "
                f"unpushed: {router.coordinator_log.pending_decisions()}")
        _settle_cluster(router, sup, cfg, at_frame)
        _verify(router, cfg, state)
        _settle_cluster(router, sup, cfg, at_frame)
        if history is not None:
            records = history.to_records()
            si_txns = sum(1 for r in records if r.get("type") == "txn")
            violations = check_history(records)
            si_violations = len(violations)
            if violations and not cfg.per_shard_snapshots:
                shown = "; ".join(str(v) for v in violations[:3])
                raise ChaosInvariantError(
                    f"SI checker found {si_violations} violation(s) in "
                    f"{si_txns} recorded txns at frame {at_frame}: {shown}")
    finally:
        workload_over.set()
        if scanner_thread is not None:
            scanner_thread.join(timeout=5.0)
        if kill_thread is not None:
            kill_thread.join(timeout=5.0)
        router.stop_in_background()
        sup.stop()
    return ClusterChaosOutcome(
        at_frame=at_frame,
        kind=kind,
        tripped=point.tripped,
        confirmed=state.confirmed,
        failed=state.failed,
        killed_shard=crash_log["killed"],
        recovered_in_doubt=crash_log["recovered_in_doubt"],
        resolved_committed=crash_log["resolved"].get("committed", 0),
        resolved_aborted=crash_log["resolved"].get("aborted", 0),
        si_txns=si_txns,
        si_violations=si_violations,
    )


def count_cluster_frames(cfg: ClusterChaosConfig) -> int:
    """Count mode: router→shard frames of one fault-free workload run."""
    point = NetCrashPoint(at_event=0)   # never fires, only counts
    point.disarm()
    plan = ChaosPlan(crash_point=point)
    sup, router = _start_cluster(cfg, plan)
    try:
        state = _WorkloadState()
        _setup_cluster_accounts(router, cfg, state)
        point.arm()
        remote = _router_client(router, cfg)
        try:
            _run_workload(remote, cfg, state)
        finally:
            remote.close()
        if state.confirmed != cfg.transfers:
            raise ChaosInvariantError(
                f"count mode lost transfers without faults: "
                f"{state.confirmed}/{cfg.transfers}")
        if router.stats.commits_2pc == 0:
            raise ChaosInvariantError(
                "workload never exercised 2PC — transfers are not "
                "crossing shards; the sweep would prove nothing")
    finally:
        router.stop_in_background()
        sup.stop()
    return point.events_seen


def run_cluster_sweep(cfg: ClusterChaosConfig) -> ClusterChaosReport:
    """Fault every ``stride``-th router→shard frame; verify each time."""
    cfg.validate()
    total = count_cluster_frames(cfg)
    report = ClusterChaosReport(shards=cfg.shards,
                                fault_mode=cfg.fault_mode,
                                total_frames=total)
    for k in range(1, total + 1, cfg.stride):
        kind = DISRUPTIVE_KINDS[k % len(DISRUPTIVE_KINDS)]
        try:
            outcome = run_cluster_one(cfg, k, kind)
        except ChaosInvariantError as exc:
            raise ChaosInvariantError(
                f"[cluster {cfg.fault_mode} {kind.value} at frame {k}] "
                f"{exc}") from exc
        report.outcomes.append(outcome)
    if cfg.si_check and cfg.per_shard_snapshots:
        # legacy mode is the checker's canary: if no fault point ever
        # fractured a read, either the reproducer stopped racing or the
        # checker went blind — both are failures of the *oracle*
        if report.si_violations_total == 0:
            raise ChaosInvariantError(
                "per-shard-snapshots mode fractured no reads across "
                f"{report.points_tested} fault points / "
                f"{report.si_txns_checked} recorded txns — the SI "
                "checker or its reproducer lost its teeth")
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Chaos sweep: network faults against the service layer")
    parser.add_argument("--engine", choices=["siasv", "si", "both"],
                        default="both")
    parser.add_argument("--stride", type=int, default=1,
                        help="fault at every stride-th network frame")
    parser.add_argument("--transfers", type=int, default=None,
                        help="workload size (default 30; replication "
                             "modes pick their own per-mode default)")
    parser.add_argument("--accounts", type=int, default=None)
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument("--cluster", action="store_true",
                        help="shard-fault mode: fault the router's shard "
                             "links of a 2PC cluster instead")
    parser.add_argument("--shards", type=int, default=2,
                        help="cluster mode: number of shards")
    parser.add_argument("--fault-mode", choices=["link", "crash"],
                        default="link",
                        help="cluster mode: break a link only, or also "
                             "power-fail and recover a shard")
    parser.add_argument("--si-check", action="store_true",
                        help="cluster mode: record every client op and "
                             "run the black-box SI checker at each fault "
                             "point (adds a racing cross-shard reader)")
    parser.add_argument("--per-shard-snapshots", action="store_true",
                        help="cluster mode: legacy lazy per-shard "
                             "snapshots; with --si-check the sweep then "
                             "EXPECTS fractured reads to be caught")
    parser.add_argument("--failover", action="store_true",
                        help="replication mode: kill the WAL-shipping "
                             "leader at every stride-th shipped frame, "
                             "promote the replica, verify "
                             "(docs/REPLICATION.md)")
    parser.add_argument("--failover-mode",
                        choices=["failover", "resync", "resync-source",
                                 "eviction"],
                        default="failover",
                        help="with --failover: which replication chaos "
                             "scenario to run (resync kills the "
                             "progressing follower of a cascading chain "
                             "at every frame and backup chunk)")
    args = parser.parse_args(argv)
    if args.failover:
        from repro.experiments import failover
        fo_argv = ["--mode", args.failover_mode,
                   "--stride", str(args.stride)]
        if args.transfers is not None:
            fo_argv += ["--transfers", str(args.transfers)]
        if args.accounts is not None:
            fo_argv += ["--accounts", str(args.accounts)]
        if args.seed is not None:
            fo_argv += ["--seed", str(args.seed)]
        return failover.main(fo_argv)
    if args.transfers is None:
        args.transfers = 30
    if args.accounts is None:
        args.accounts = 8
    if args.seed is None:
        args.seed = 11
    if args.cluster:
        cfg = ClusterChaosConfig(
            shards=args.shards, fault_mode=args.fault_mode,
            accounts=args.accounts, transfers=args.transfers,
            stride=args.stride, seed=args.seed,
            si_check=args.si_check,
            per_shard_snapshots=args.per_shard_snapshots)
        report = run_cluster_sweep(cfg)
        if cfg.si_check and cfg.per_shard_snapshots:
            print(f"cluster({report.shards} shards, {report.fault_mode}, "
                  f"legacy per-shard snapshots): "
                  f"{report.si_violations_total} SI violation(s) caught "
                  f"in {report.si_txns_checked} recorded txns across "
                  f"{report.points_tested} fault points — the checker "
                  f"sees the fractured snapshots, as expected")
            return 0
        suffix = ""
        if cfg.si_check:
            suffix = (f", {report.si_txns_checked} txns SI-checked: "
                      f"0 violations")
        print(f"cluster({report.shards} shards, {report.fault_mode}): "
              f"{report.points_tested} fault points over "
              f"{report.total_frames} router→shard frames "
              f"({report.points_tripped} tripped, "
              f"{report.shards_killed} shard power-failures, "
              f"{report.in_doubt_recovered} in-doubt txns recovered, "
              f"{report.in_doubt_settled} coordinator-settled{suffix}) — "
              f"all invariants held")
        return 0
    kinds = {"siasv": [EngineKind.SIASV], "si": [EngineKind.SI],
             "both": [EngineKind.SIASV, EngineKind.SI]}[args.engine]
    for kind in kinds:
        cfg = ChaosSweepConfig(kind=kind, accounts=args.accounts,
                               transfers=args.transfers, stride=args.stride,
                               seed=args.seed)
        report = run_sweep(cfg)
        print(f"{kind.name:6s}: {report.points_tested} fault points over "
              f"{report.total_frames} frames "
              f"({report.points_tripped} tripped, "
              f"{report.uncertain_total} ambiguous commits resolved) — "
              f"all invariants held")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
