"""Plain-text renderers for experiment tables and series.

Every exhibit prints through these helpers, so benches, examples and the
EXPERIMENTS.md regeneration all share one format: a fixed-width ASCII table
with a title line, plus CSV export for external plotting.
"""

from __future__ import annotations

from typing import Sequence


def format_table(title: str, headers: Sequence[str],
                 rows: Sequence[Sequence[object]]) -> str:
    """Render a titled fixed-width table."""
    cells = [[_fmt(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def _line(values: Sequence[str]) -> str:
        return "| " + " | ".join(v.rjust(w) for v, w in zip(values, widths)) \
            + " |"

    sep = "+-" + "-+-".join("-" * w for w in widths) + "-+"
    out = [title, sep, _line(list(headers)), sep]
    out.extend(_line(row) for row in cells)
    out.append(sep)
    return "\n".join(out) + "\n"


def to_csv(headers: Sequence[str],
           rows: Sequence[Sequence[object]]) -> str:
    """CSV export of the same rows."""
    lines = [",".join(headers)]
    lines.extend(",".join(_fmt(v) for v in row) for row in rows)
    return "\n".join(lines) + "\n"


def _fmt(value: object) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def format_ratio(numerator: float, denominator: float) -> str:
    """Human ratio like '33.1x' (guarding zero denominators)."""
    if denominator == 0:
        return "inf"
    return f"{numerator / denominator:.1f}x"


def format_pct(fraction: float) -> str:
    """Percentage with no decimals: 0.973 → '97%'."""
    return f"{fraction * 100:.0f}%"
