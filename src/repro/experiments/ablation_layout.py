"""Ablation A1: NSM vs column-vector append-page layout (the "V").

Quantifies what the vector layout buys on the read path: a visibility sweep
over a page touches only the fixed-width metadata vectors instead of the
whole interleaved records.  Both layouts run the identical workload; the
runner then sums, over all sealed pages, the bytes a full visibility check
of the relation would touch under each layout, and reports packing density
for completeness (both layouts store the same logical content).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common import units
from repro.common.config import PageLayout
from repro.db.database import EngineKind
from repro.experiments import harness
from repro.experiments.render import format_pct, format_table
from repro.pages.append_page import AppendPage
from repro.workload.driver import DriverConfig
from repro.workload.mixes import UPDATE_HEAVY_MIX
from repro.workload.tpcc_schema import TpccScale


@dataclass
class LayoutResult:
    """One row per layout."""

    rows: list[list[object]]
    meta_bytes: dict[str, int]

    @property
    def vector_saving(self) -> float:
        """Fraction of visibility-sweep bytes saved by the vector layout."""
        nsm = self.meta_bytes.get("nsm", 0)
        if nsm == 0:
            return 0.0
        return 1.0 - self.meta_bytes.get("vector", 0) / nsm

    def table(self) -> str:
        """Render the comparison."""
        return format_table(
            "A1 - append-page layout: NSM vs column vectors",
            ["layout", "sealed pages", "records/page",
             "visibility-sweep MiB", "page-content MiB", "sweep saving"],
            self.rows)


def _sweep_bytes(run: harness.MeasuredRun) -> tuple[int, int, int, int]:
    """(meta bytes, used bytes, pages, records) over all sealed pages."""
    meta = used = pages = records = 0
    for relation in run.db.tables.values():
        store = relation.engine.store
        for page_no in store.sealed_page_nos():
            page = store.buffer.get_page(store.file_id, page_no)
            assert isinstance(page, AppendPage)
            meta += page.meta_scan_bytes()
            used += page.used_bytes
            pages += 1
            records += page.record_count
    return meta, used, pages, records


def run(warehouses: int = 8, duration_usec: int = 20 * units.SEC,
        scale: TpccScale | None = None,
        seed: int = 42) -> LayoutResult:
    """Run the identical workload under both layouts and compare."""
    driver_config = DriverConfig(clients=8, mix=dict(UPDATE_HEAVY_MIX),
                                 maintenance_interval_usec=30 * units.SEC)
    rows: list[list[object]] = []
    meta_bytes: dict[str, int] = {}
    sweeps: dict[str, tuple[int, int, int, int]] = {}
    for layout in (PageLayout.NSM, PageLayout.VECTOR):
        setup = harness.ssd_single()
        setup = setup.with_config(setup.config.with_engine(layout=layout))
        measured = harness.run_tpcc(EngineKind.SIASV, setup, warehouses,
                                    duration_usec, scale=scale,
                                    driver_config=driver_config, seed=seed)
        sweeps[layout.value] = _sweep_bytes(measured)
        meta_bytes[layout.value] = sweeps[layout.value][0]
    nsm_meta = meta_bytes["nsm"]
    for layout in (PageLayout.NSM, PageLayout.VECTOR):
        meta, used, pages, records = sweeps[layout.value]
        saving = 0.0 if nsm_meta == 0 else 1.0 - meta / nsm_meta
        rows.append([layout.value, pages,
                     round(records / pages, 1) if pages else 0,
                     round(units.mib(meta), 2), round(units.mib(used), 2),
                     format_pct(saving)])
    return LayoutResult(rows=rows, meta_bytes=meta_bytes)
