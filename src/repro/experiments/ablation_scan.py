"""Ablation A3: VIDmap-mediated scan vs. traditional full-relation scan.

The paper: "SIAS-Chains scans the VIDmap first and enables more selective
I/O ... the traditional scan is inefficient, since each tuple version has to
be checked."  After an update-heavy warm-up (so relations carry plenty of
superseded versions), the scan strategies run over the *same* engine with a
cold buffer pool; the runner reports device page reads, simulated scan time
and rows returned (which must match — that equality is also a test).  The
*vectorized scan* row is the page-at-a-time kernel path
(:mod:`repro.core.vecscan`): same VIDmap-mediated selectivity as the plain
vidmap scan, but visibility is bitmap-checked per sealed VECTOR page.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common import units
from repro.db.database import EngineKind
from repro.experiments import harness
from repro.experiments.render import format_table
from repro.core.scan import full_relation_scan, vidmap_scan
from repro.core.vecscan import vec_scan
from repro.workload.driver import DriverConfig
from repro.workload.mixes import UPDATE_HEAVY_MIX
from repro.workload.tpcc_schema import STOCK, TpccScale


@dataclass
class ScanResult:
    """One row per scan strategy."""

    rows: list[list[object]]
    vidmap_reads: int
    full_reads: int
    rows_equal: bool

    def table(self) -> str:
        """Render the comparison."""
        return format_table(
            "A3 - scan strategy on the stock relation (cold cache)",
            ["strategy", "rows", "device reads", "scan time (ms)"],
            self.rows)


def run(warehouses: int = 8, duration_usec: int = 15 * units.SEC,
        scale: TpccScale | None = None,
        seed: int = 42) -> ScanResult:
    """Warm up with updates, then race the two scan strategies cold."""
    driver_config = DriverConfig(clients=8, mix=dict(UPDATE_HEAVY_MIX),
                                 maintenance_interval_usec=10_000 * units.SEC)
    measured = harness.run_tpcc(EngineKind.SIASV, harness.ssd_single(),
                                warehouses, duration_usec, scale=scale,
                                driver_config=driver_config, seed=seed)
    db = measured.db
    relation = db.table(STOCK)
    engine = relation.engine

    def vectorized_scan(eng, txn):
        # page-at-a-time kernels over the same VIDmap entries
        return vec_scan(eng, relation.codec, txn)

    rows: list[list[object]] = []
    counts: dict[str, int] = {}
    reads: dict[str, int] = {}
    for label, scan_fn in (("vidmap scan", vidmap_scan),
                           ("vectorized scan", vectorized_scan),
                           ("full relation scan", full_relation_scan)):
        db.buffer.invalidate_all()
        txn = db.begin()
        reads_before = db.data_device.stats.reads
        time_before = db.clock.now
        count = sum(1 for _ in scan_fn(engine, txn))
        db.commit(txn)
        counts[label] = count
        reads[label] = db.data_device.stats.reads - reads_before
        rows.append([label, count, reads[label],
                     round(units.msec_from_usec(db.clock.now - time_before),
                           2)])
    return ScanResult(
        rows=rows,
        vidmap_reads=reads["vidmap scan"],
        full_reads=reads["full relation scan"],
        rows_equal=len(set(counts.values())) == 1,
    )
