"""Exhibits F1/F2: blocktrace I/O-pattern figures (SIAS-V vs SI on SSD).

Reproduces the paper's pair of blocktrace scatter plots: under SIAS-V the
data device sees almost only reads, scattered selectively over the address
space, while writes form compact append "swimlanes" per relation; under SI
reads and writes are mixed and writes smear across the whole relation
(in-place invalidations + FSM placement).

The runner renders both traces as ASCII scatter plots and quantifies the
contrast with two scalars per engine: the write-locality score (fraction of
sequential-successor writes) and the read/write request ratio.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common import units
from repro.db.database import EngineKind
from repro.experiments import harness
from repro.experiments.render import format_table
from repro.storage.trace import TraceRecorder, render_scatter, swimlane_locality
from repro.workload.driver import DriverConfig
from repro.workload.tpcc_schema import TpccScale


@dataclass
class BlocktraceResult:
    """Both traces plus their summary scalars."""

    traces: dict[str, TraceRecorder]
    rows: list[list[object]]
    figures: dict[str, str]

    def table(self) -> str:
        """Summary table printed under the figures."""
        return format_table(
            "F1/F2 - blocktrace summary (data device, measurement window)",
            ["engine", "reads", "writes", "read MiB", "write MiB",
             "write locality", "R/W ratio"],
            self.rows)

    def render(self) -> str:
        """Figures plus table, ready to print."""
        parts = [self.figures["sias-v"], self.figures["si"], self.table()]
        return "\n".join(parts)


def run(warehouses: int = 8, duration_usec: int = 20 * units.SEC,
        scale: TpccScale | None = None,
        driver_config: DriverConfig | None = None,
        seed: int = 42) -> BlocktraceResult:
    """Run both engines with tracing; returns figures + summary rows."""
    traces: dict[str, TraceRecorder] = {}
    rows: list[list[object]] = []
    figures: dict[str, str] = {}
    driver_config = driver_config or DriverConfig(
        clients=8, maintenance_interval_usec=10 * units.SEC)
    for engine in (EngineKind.SIASV, EngineKind.SI):
        trace = TraceRecorder()
        harness.run_tpcc(engine, harness.ssd_single(), warehouses,
                         duration_usec, scale=scale,
                         driver_config=driver_config, trace=trace,
                         seed=seed)
        label = engine.value
        traces[label] = trace
        summary = trace.summary()
        locality = swimlane_locality(trace)
        ratio = (summary.reads / summary.writes
                 if summary.writes else float("inf"))
        rows.append([label, summary.reads, summary.writes,
                     round(summary.read_mib, 1), round(summary.write_mib, 1),
                     round(locality, 3), round(ratio, 1)])
        title = (f"Blocktrace: {label.upper()} - SSD - {warehouses} WH - "
                 f"{units.fmt_usec(duration_usec)}")
        figures[label] = render_scatter(trace, title=title)
    return BlocktraceResult(traces=traces, rows=rows, figures=figures)
