"""Exhibit T2: space consumption and page fill degree.

The paper reports that SIAS configured with threshold t2 *reduces overall
space consumption* (≈12 % on their setup) because pages reach the device
densely packed, while t1 persists sparsely filled pages ("wasted space").
This runner measures, for SI and both SIAS thresholds after identical
workloads: total device footprint, the SIAS average sealed-page fill degree
and the wasted bytes inside sealed pages.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common import units
from repro.common.config import FlushThreshold
from repro.db.database import EngineKind
from repro.experiments import harness
from repro.experiments.render import format_pct, format_table
from repro.workload.driver import DriverConfig
from repro.workload.mixes import UPDATE_HEAVY_MIX
from repro.workload.tpcc_schema import TpccScale


@dataclass
class SpaceResult:
    """Rows: one per configuration."""

    rows: list[list[object]]
    si_space_mib: float
    t2_space_mib: float

    @property
    def t2_reduction(self) -> float:
        """Fractional space reduction of SIAS-t2 vs SI."""
        if self.si_space_mib == 0:
            return 0.0
        return 1.0 - self.t2_space_mib / self.si_space_mib

    def table(self) -> str:
        """Render the space table.

        ``space MiB`` is the engine-level footprint (heap pages vs sealed
        append pages + VIDmap); ``device MiB`` is the SSD's own occupancy
        view (valid FTL pages), which also charges SI for the dead versions
        sitting in its heap between vacuums.
        """
        return format_table(
            "T2 - space consumption and fill degree",
            ["config", "space MiB", "device MiB", "vs SI", "avg fill",
             "wasted MiB"],
            self.rows)


def _sias_fill_stats(run: harness.MeasuredRun) -> tuple[float, float]:
    fill_sum = pages = wasted = 0.0
    for relation in run.db.tables.values():
        stats = relation.engine.store.stats
        fill_sum += stats.fill_degree_sum
        pages += stats.sealed_pages
        wasted += stats.wasted_bytes
    avg_fill = fill_sum / pages if pages else 1.0
    return avg_fill, units.mib(wasted)


def run(warehouses: int = 10, duration_usec: int = 60 * units.SEC,
        scale: TpccScale | None = None,
        driver_config: DriverConfig | None = None,
        seed: int = 42) -> SpaceResult:
    """Measure post-run space for SI, SIAS-t1 and SIAS-t2."""
    driver_config = driver_config or DriverConfig(
        clients=8, mix=dict(UPDATE_HEAVY_MIX),
        maintenance_interval_usec=30 * units.SEC)
    si = harness.run_tpcc(EngineKind.SI, harness.ssd_single(), warehouses,
                          duration_usec, scale=scale,
                          driver_config=driver_config, seed=seed)
    t1 = harness.run_tpcc(EngineKind.SIASV, harness.ssd_single(), warehouses,
                          duration_usec, scale=scale,
                          driver_config=driver_config,
                          threshold=FlushThreshold.T1, seed=seed)
    t2 = harness.run_tpcc(EngineKind.SIASV, harness.ssd_single(), warehouses,
                          duration_usec, scale=scale,
                          driver_config=driver_config,
                          threshold=FlushThreshold.T2, seed=seed)
    def _device_mib(run_: harness.MeasuredRun) -> float:
        device = run_.db.data_device
        live = getattr(device, "live_pages", None)
        if live is None:
            return 0.0
        return units.mib(live() * run_.db.config.buffer.page_size)

    si_mib = units.mib(si.space_bytes)
    rows: list[list[object]] = [
        ["SI", round(si_mib, 1), round(_device_mib(si), 1), "-", "-", "-"]]
    t2_mib = 0.0
    for label, run_ in (("SIAS-t1", t1), ("SIAS-t2", t2)):
        space_mib = units.mib(run_.space_bytes)
        if label == "SIAS-t2":
            t2_mib = space_mib
        avg_fill, wasted_mib = _sias_fill_stats(run_)
        delta = (space_mib - si_mib) / si_mib if si_mib else 0.0
        rows.append([label, round(space_mib, 1),
                     round(_device_mib(run_), 1),
                     ("+" if delta >= 0 else "") + format_pct(delta),
                     round(avg_fill, 3), round(wasted_mib, 1)])
    return SpaceResult(rows=rows, si_space_mib=si_mib, t2_space_mib=t2_mib)
