"""Experiment runners: one module per table/figure of the evaluation.

Exhibit map (see DESIGN.md for the full index):

========  ======================================  =========================
Exhibit   What it regenerates                      Module
========  ======================================  =========================
F1/F2     Blocktrace I/O-pattern figures           ``blocktrace``
T1        Write amount & reduction table           ``write_reduction``
T2        Space consumption table                  ``space``
F3/F4     SSD-RAID throughput/response figures     ``tpcc_ssd``
T3        HDD throughput/response table            ``tpcc_hdd``
A1        Layout ablation (NSM vs vectors)         ``ablation_layout``
A2        Flush-threshold ablation                 ``ablation_threshold``
A3        Scan-strategy ablation                   ``ablation_scan``
A4        Flash endurance ablation                 ``endurance``
========  ======================================  =========================
"""

from repro.experiments import (
    ablation_colocation,
    ablation_layout,
    ablation_noftl,
    ablation_scan,
    ablation_threshold,
    blocktrace,
    chaos_sweep,
    crash_sweep,
    endurance,
    report,
    space,
    tolerable_load,
    tpcc_hdd,
    tpcc_ssd,
    write_reduction,
)
from repro.experiments.harness import (
    MeasuredRun,
    SystemSetup,
    build_database,
    hdd_single,
    run_tpcc,
    ssd_raid2,
    ssd_raid6,
    ssd_single,
)
from repro.experiments.render import format_table, to_csv

__all__ = [
    "MeasuredRun",
    "SystemSetup",
    "ablation_colocation",
    "ablation_layout",
    "ablation_noftl",
    "ablation_scan",
    "ablation_threshold",
    "blocktrace",
    "chaos_sweep",
    "crash_sweep",
    "build_database",
    "endurance",
    "format_table",
    "hdd_single",
    "report",
    "run_tpcc",
    "space",
    "ssd_raid2",
    "ssd_raid6",
    "ssd_single",
    "to_csv",
    "tolerable_load",
    "tpcc_hdd",
    "tpcc_ssd",
    "write_reduction",
]
