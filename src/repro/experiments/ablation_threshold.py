"""Ablation A2: flush-threshold sweep (fill degree → writes and space).

DESIGN.md calls the flush threshold out as the decisive knob behind both T1
(write reduction) and T2 (space): "the optimal threshold for write
efficiency is the maximum filling degree of a page".  This sweep runs the
identical workload under t1 (eager background-writer sealing) and under t2
at several fill targets, reporting write volume, sealed-page count, average
fill degree and device footprint — the expected monotone trade: higher fill
target → fewer, denser pages → less write volume and less space.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common import units
from repro.common.config import FlushThreshold
from repro.db.database import EngineKind
from repro.experiments import harness
from repro.experiments.render import format_table
from repro.workload.driver import DriverConfig
from repro.workload.mixes import UPDATE_HEAVY_MIX
from repro.workload.tpcc_schema import TpccScale


@dataclass
class ThresholdPoint:
    """One configuration's outcome."""

    label: str
    write_mib: float
    sealed_pages: int
    avg_fill: float
    space_mib: float


@dataclass
class ThresholdResult:
    """All sweep points in run order."""

    points: list[ThresholdPoint]

    @property
    def rows(self) -> list[list[object]]:
        """Table rows."""
        return [[p.label, round(p.write_mib, 1), p.sealed_pages,
                 round(p.avg_fill, 3), round(p.space_mib, 1)]
                for p in self.points]

    def table(self) -> str:
        """Render the sweep."""
        return format_table(
            "A2 - flush threshold sweep (SIAS-V)",
            ["config", "write MiB", "sealed pages", "avg fill",
             "space MiB"],
            self.rows)


def _fill_stats(run: harness.MeasuredRun) -> tuple[int, float]:
    pages = 0
    fill_sum = 0.0
    for relation in run.db.tables.values():
        stats = relation.engine.store.stats
        pages += stats.sealed_pages
        fill_sum += stats.fill_degree_sum
    return pages, (fill_sum / pages if pages else 1.0)


def run(warehouses: int = 8, duration_usec: int = 20 * units.SEC,
        fill_targets: tuple[float, ...] = (0.25, 0.5, 0.75, 0.95),
        scale: TpccScale | None = None,
        seed: int = 42) -> ThresholdResult:
    """Sweep t1 plus t2 at each fill target."""
    driver_config = DriverConfig(clients=8, mix=dict(UPDATE_HEAVY_MIX),
                                 maintenance_interval_usec=30 * units.SEC)
    points: list[ThresholdPoint] = []

    def _measure(label: str, threshold: FlushThreshold,
                 fill_target: float) -> None:
        setup = harness.ssd_single()
        setup = setup.with_config(setup.config.with_engine(
            flush_threshold=threshold, append_fill_target=fill_target))
        measured = harness.run_tpcc(EngineKind.SIASV, setup, warehouses,
                                    duration_usec, scale=scale,
                                    driver_config=driver_config, seed=seed)
        pages, avg_fill = _fill_stats(measured)
        points.append(ThresholdPoint(
            label=label,
            write_mib=measured.write_mib,
            sealed_pages=pages,
            avg_fill=avg_fill,
            space_mib=units.mib(measured.space_bytes)))

    _measure("t1 (bgwriter)", FlushThreshold.T1, 0.95)
    for target in fill_targets:
        _measure(f"t2 fill={target:.2f}", FlushThreshold.T2, target)
    return ThresholdResult(points=points)
