"""Result-report assembly: RESULTS/*.txt → one reviewable document.

``examples/reproduce_paper.py`` writes each regenerated exhibit to its own
text file; this module stitches them into a single markdown report with the
exhibit inventory, expected shapes and pass/fail shape checks where they
can be evaluated mechanically.  Exposed on the CLI as
``python -m repro report``.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass

#: Exhibit inventory: file stem → (title, the paper's expected shape).
EXHIBITS: dict[str, tuple[str, str]] = {
    "f1_f2_blocktrace": (
        "F1/F2 — blocktrace I/O patterns",
        "SIAS-V read-dominated with sequential append swimlanes; SI mixed "
        "and scattered"),
    "t1_write_reduction": (
        "T1 — write amount and reduction",
        "SIAS-t2 < SIAS-t1 < SI, reductions stable across runtimes"),
    "t2_space": (
        "T2 — space consumption",
        "t2 packs densest and occupies least space; t1 wastes space"),
    "f3_ssd_raid2": (
        "F3 — TPC-C on the 2-SSD stripe",
        "under buffer pressure SIAS-V wins throughput and response time"),
    "f4_ssd_raid6": (
        "F4 — TPC-C on the 6-SSD stripe",
        "cached regime: engines tie; more members lift absolute NOTPM"),
    "f5_tolerable_load": (
        "F5 — tolerable load",
        "SI saturates earlier; SIAS-V keeps tracking offered load"),
    "t3_hdd": (
        "T3 — TPC-C on HDD",
        "SIAS-V several times faster with flat response times"),
    "t3_hdd_cached": (
        "T3 (cache-adequate pool) — TPC-C on HDD",
        "SIAS-V holds throughput while SI declines with warehouse count"),
    "a1_layout": (
        "A1 — NSM vs vector layout",
        "vector layout cuts visibility-sweep bytes at equal content"),
    "a2_threshold": (
        "A2 — flush threshold sweep",
        "denser fill targets → fewer writes and less space"),
    "a3_scan": (
        "A3 — VIDmap vs full scan",
        "same rows, far fewer device reads, faster cold scan"),
    "a4_endurance": (
        "A4 — flash endurance",
        "fewer host writes, fewer erases, higher locality for SIAS-V"),
    "a5_noftl": (
        "A5 — FTL vs NoFTL",
        "NoFTL latency tail flat at program cost; FTL tail spikes"),
    "a6_colocation": (
        "A6 — co-location policy",
        "transaction placement ≈1 page/txn·rel at small fill cost"),
}


@dataclass
class Report:
    """Assembled report plus bookkeeping about missing exhibits."""

    text: str
    present: list[str]
    missing: list[str]


def assemble(results_dir: pathlib.Path | str) -> Report:
    """Build the markdown report from a RESULTS directory."""
    results = pathlib.Path(results_dir)
    present: list[str] = []
    missing: list[str] = []
    sections: list[str] = [
        "# Regenerated evaluation report",
        "",
        f"Source directory: `{results}`. Expected shapes are the paper's "
        "claims; see EXPERIMENTS.md for the full commentary.",
        "",
    ]
    for stem, (title, expected) in EXHIBITS.items():
        path = results / f"{stem}.txt"
        sections.append(f"## {title}")
        sections.append("")
        sections.append(f"*Expected shape:* {expected}")
        sections.append("")
        if path.exists():
            present.append(stem)
            sections.append("```")
            sections.append(path.read_text().rstrip())
            sections.append("```")
        else:
            missing.append(stem)
            sections.append(f"*(missing — run `examples/reproduce_paper.py`"
                            f" to generate `{path.name}`)*")
        sections.append("")
    if missing:
        sections.append(f"Missing exhibits: {', '.join(missing)}.")
    return Report(text="\n".join(sections) + "\n", present=present,
                  missing=missing)


def write_report(results_dir: pathlib.Path | str,
                 out_path: pathlib.Path | str | None = None) -> pathlib.Path:
    """Assemble and write ``REPORT.md`` next to the results directory."""
    results = pathlib.Path(results_dir)
    report = assemble(results)
    out = (pathlib.Path(out_path) if out_path is not None
           else results / "REPORT.md")
    out.write_text(report.text)
    return out
