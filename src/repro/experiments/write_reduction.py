"""Exhibit T1: write amount (MiB) and reduction (%) — SI vs SIAS-t1/t2.

The paper's Table 1 records, for three runtimes, the total write volume the
data device received under SI and under SIAS with both flush thresholds, and
the reduction percentages (~65 % with t1, ~97 % with t2 on the authors'
hardware).  This runner regenerates the same rows on the simulator; the
expected *shape* is: SIAS-t2 ≪ SIAS-t1 < SI, reductions roughly stable
across runtimes (write volume scales ~linearly with runtime for all three
configurations).

Runtimes are simulated seconds; the defaults are scaled down 10:1 from the
paper's 600/900/1800 s (documented in EXPERIMENTS.md) to keep a pure-Python
run tractable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common import units
from repro.common.config import FlushThreshold
from repro.db.database import EngineKind
from repro.experiments import harness
from repro.experiments.render import format_pct, format_table
from repro.workload.driver import DriverConfig
from repro.workload.mixes import UPDATE_HEAVY_MIX
from repro.workload.tpcc_schema import TpccScale


@dataclass
class WriteReductionResult:
    """Rows of the regenerated Table 1."""

    rows: list[list[object]]
    warehouses: int

    def table(self) -> str:
        """Render in the paper's column order."""
        return format_table(
            f"T1 - write amount (MiB) and reduction (%), "
            f"{self.warehouses} WH",
            ["time (s)", "SI", "SIAS-t1", "SIAS-t2", "Red t1", "Red t2"],
            self.rows)


def _update_heavy_driver() -> DriverConfig:
    # Think-time pacing rate-limits the offered load below either engine's
    # capacity, so SI and SIAS process the *same* transaction stream over
    # the same window — write volumes then compare equal work over equal
    # time, like the paper's concurrent blktrace windows.
    return DriverConfig(clients=8, mix=dict(UPDATE_HEAVY_MIX),
                        think_time_usec=40 * units.MSEC,
                        maintenance_interval_usec=30 * units.SEC)


def run(warehouses: int = 10,
        durations_usec: tuple[int, ...] = (60 * units.SEC, 90 * units.SEC,
                                           180 * units.SEC),
        scale: TpccScale | None = None,
        driver_config: DriverConfig | None = None,
        seed: int = 42) -> WriteReductionResult:
    """Regenerate Table 1 rows for the given runtimes."""
    driver_config = driver_config or _update_heavy_driver()
    rows: list[list[object]] = []
    for duration in durations_usec:
        si = harness.run_tpcc(EngineKind.SI, harness.ssd_single(),
                              warehouses, duration, scale=scale,
                              driver_config=driver_config, seed=seed)
        t1 = harness.run_tpcc(EngineKind.SIASV, harness.ssd_single(),
                              warehouses, duration, scale=scale,
                              driver_config=driver_config,
                              threshold=FlushThreshold.T1, seed=seed)
        t2 = harness.run_tpcc(EngineKind.SIASV, harness.ssd_single(),
                              warehouses, duration, scale=scale,
                              driver_config=driver_config,
                              threshold=FlushThreshold.T2, seed=seed)
        red_t1 = 1.0 - (t1.write_mib / si.write_mib if si.write_mib else 0.0)
        red_t2 = 1.0 - (t2.write_mib / si.write_mib if si.write_mib else 0.0)
        rows.append([int(units.sec_from_usec(duration)),
                     round(si.write_mib, 1), round(t1.write_mib, 1),
                     round(t2.write_mib, 1),
                     format_pct(red_t1), format_pct(red_t2)])
    return WriteReductionResult(rows=rows, warehouses=warehouses)
