"""Ablation A6: version co-location — by recency (SIAS-V) vs by transaction.

The paper's related work contrasts SIAS-V's recency co-location with SI-CV
(Gottstein et al., TPC-TC 2012), which places all versions *of one
transaction* together.  Both policies are append-only and share every other
mechanism here, so the ablation isolates pure placement:

* **pages/txn·rel** — over committed (transaction, relation) pairs with
  several versions, how many distinct device pages hold them.  Transaction
  co-location drives this toward 1 (a transaction's effects on a relation
  read back with one page fetch); recency placement smears a transaction
  across whatever pages were filling while it ran — the more concurrent
  clients, the worse.
* **txns/page** — the converse interleaving metric.
* Write volume and fill degree — the cost side: per-transaction pages seal
  sparser under light concurrency, so SI-CV trades some packing density.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.common import units
from repro.common.config import Colocation
from repro.db.database import EngineKind
from repro.experiments import harness
from repro.experiments.render import format_table
from repro.pages.append_page import AppendPage
from repro.workload.driver import DriverConfig
from repro.workload.mixes import UPDATE_HEAVY_MIX
from repro.workload.tpcc_schema import TpccScale


@dataclass
class ColocationResult:
    """One row per policy."""

    rows: list[list[object]]
    pages_per_txn: dict[str, float]

    def table(self) -> str:
        """Render the comparison."""
        return format_table(
            "A6 - version co-location: recency (SIAS-V) vs transaction "
            "(SI-CV)",
            ["policy", "pages/txn-rel", "txns/page", "write MiB",
             "avg fill"],
            self.rows)


def _placement_metrics(run: harness.MeasuredRun) -> tuple[float, float]:
    """(mean pages per txn·relation, mean txns per page)."""
    txn_pages: dict[tuple[int, int], set] = defaultdict(set)
    txn_records: dict[tuple[int, int], int] = defaultdict(int)
    page_txns: dict[tuple, set] = defaultdict(set)
    clog = run.db.txn_mgr.clog
    for relation in run.db.tables.values():
        store = relation.engine.store
        for page_no in store.sealed_page_nos():
            page = store.buffer.get_page(store.file_id, page_no)
            assert isinstance(page, AppendPage)
            for _slot, record in page.records():
                if not clog.is_committed(record.create_ts):
                    continue
                txn_rel = (record.create_ts, relation.relation_id)
                txn_pages[txn_rel].add(page_no)
                txn_records[txn_rel] += 1
                page_txns[(relation.relation_id, page_no)].add(
                    record.create_ts)
    # only (txn, relation) pairs with several versions can spread at all
    spreads = [len(pages) for key, pages in txn_pages.items()
               if txn_records[key] >= 4]
    pages_per = sum(spreads) / len(spreads) if spreads else 0.0
    txns_per_page = (sum(len(t) for t in page_txns.values())
                     / len(page_txns) if page_txns else 0.0)
    return pages_per, txns_per_page


def run(warehouses: int = 6, duration_usec: int = 15 * units.SEC,
        scale: TpccScale | None = None, clients: int = 16,
        seed: int = 42) -> ColocationResult:
    """Run the identical workload under both placement policies."""
    driver_config = DriverConfig(clients=clients,
                                 mix=dict(UPDATE_HEAVY_MIX),
                                 maintenance_interval_usec=10_000 * units.SEC)
    rows: list[list[object]] = []
    pages_per_txn: dict[str, float] = {}
    for policy in (Colocation.RECENCY, Colocation.TRANSACTION):
        setup = harness.ssd_single()
        setup = setup.with_config(setup.config.with_engine(
            colocation=policy))
        measured = harness.run_tpcc(EngineKind.SIASV, setup, warehouses,
                                    duration_usec, scale=scale,
                                    driver_config=driver_config, seed=seed)
        spread, interleave = _placement_metrics(measured)
        fills = pages = 0.0
        for relation in measured.db.tables.values():
            stats = relation.engine.store.stats
            fills += stats.fill_degree_sum
            pages += stats.sealed_pages
        avg_fill = fills / pages if pages else 1.0
        pages_per_txn[policy.value] = spread
        rows.append([policy.value, round(spread, 2), round(interleave, 2),
                     round(measured.write_mib, 1), round(avg_fill, 3)])
    return ColocationResult(rows=rows, pages_per_txn=pages_per_txn)
