"""Ablation A5: FTL-backed SSD vs NoFTL raw flash under SIAS-V.

The paper's discussion claims DBMS-driven space reclamation "avoids
unpredictable performance outliers of the Flash storage media, caused by
background processes on the device".  The simulator makes the claim
testable: an identical version-churn workload (steady updates over a fixed
row population, GC keeping the live set bounded) runs once on a
deliberately small FTL SSD — whose foreground garbage collection stalls
host writes behind relocation and erase — and once on NoFTL raw flash,
where the DBMS GC's trims trigger deterministic whole-block erases and no
host write ever waits for relocation.

Reported per device: write-latency mean / p99 / max, block erases, and
write amplification.  Expected shape: near-identical write counts and
means, but the FTL's latency tail (p99/max) spikes by the erase cost while
NoFTL stays flat at the bare program latency — on NoFTL the erases run in
the *maintenance* path, where the DBMS scheduled them.  Write amplification
stays ≈1.0 on **both** flavours, which is itself a result the paper
predicts: because the DBMS GC trims dead pages eagerly, FTL victim blocks
are fully invalid and never need relocation — what remains of the FTL is
only its unpredictable foreground stalls, i.e. exactly the part NoFTL
eliminates.

The churn driver is synthetic (single client, no conflicts): A5 isolates
*device* behaviour, and concurrency would only add abort noise.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common import units
from repro.common.clock import SimClock
from repro.common.config import BufferConfig, FlashConfig, SystemConfig
from repro.common.rng import make_rng
from repro.db.catalog import IndexDef
from repro.db.database import Database, EngineKind
from repro.db.schema import ColType, Schema
from repro.experiments.render import format_table
from repro.storage.flash import FlashDevice
from repro.storage.noftl import NoFtlFlashDevice
from repro.workload.metrics import percentile

_SCHEMA = Schema.of(("id", ColType.INT), ("payload", ColType.STR),
                    ("counter", ColType.INT))


@dataclass
class NoFtlResult:
    """One row per device flavour."""

    rows: list[list[object]]
    max_latency: dict[str, int]
    write_amp: dict[str, float]

    def table(self) -> str:
        """Render the comparison."""
        return format_table(
            "A5 - FTL vs NoFTL raw flash under SIAS-V (write latencies, us)",
            ["device", "writes", "mean", "p99", "max", "erases",
             "write amp"],
            self.rows)


def _build_db(flavour: str, capacity_mib: int) -> Database:
    config = SystemConfig(
        flash=FlashConfig(capacity_bytes=capacity_mib * units.MIB,
                          gc_free_block_low_watermark=4),
        buffer=BufferConfig(pool_pages=1024,
                            max_wal_bytes=4 * units.MIB),
        # one extent per erase block: the natural NoFTL layout, so a
        # relation's reclaimed extent dies as a whole and erases cleanly
        extent_pages=FlashConfig().pages_per_block,
    )
    clock = SimClock()
    wal = FlashDevice(clock, FlashConfig(), name="wal-ssd")
    if flavour == "ftl":
        data = FlashDevice(clock, config.flash, name="data-ftl")
    else:
        data = NoFtlFlashDevice(clock, config.flash, name="data-noftl")
    db = Database(EngineKind.SIASV, data, wal, config)
    db.create_table("items", _SCHEMA,
                    indexes=[IndexDef("pk", ("id",), unique=True)])
    return db


def _churn(db: Database, rows: int, updates: int, gc_every: int,
           seed: int, cold_rows: int = 0) -> None:
    """Steady single-client version churn over a fixed row population.

    ``cold_rows`` extra rows are interleaved at load time and never
    updated: their versions sit among the churned ones, so reclaiming
    space requires relocating live data — the FTL does it invisibly (write
    amplification), the DBMS GC does it explicitly (on both flavours).
    """
    rng = make_rng(seed, "noftl-churn")
    txn = db.begin()
    refs = []
    for i in range(rows + cold_rows):
        ref = db.insert(txn, "items", (i, "x" * 600, 0))
        if i % (1 + cold_rows // max(1, rows)) == 0 and len(refs) < rows:
            refs.append(ref)
    db.commit(txn)
    db.data_device.write_service_log.clear()
    for i in range(updates):
        ref = refs[rng.randrange(rows)]
        txn = db.begin()
        row = db.read(txn, "items", ref)
        db.update(txn, "items", ref, (row[0], row[1], row[2] + 1))
        db.commit(txn)
        db.tick()
        if i % gc_every == gc_every - 1:
            db.maintenance()
    for relation in db.tables.values():
        relation.engine.store.seal_working_page()
    db.wal.force()


def run(rows: int = 400, updates: int = 40_000, capacity_mib: int = 8,
        gc_every: int = 2000, cold_rows: int = 400,
        seed: int = 42) -> NoFtlResult:
    """Fixed churn on both device flavours; compare write behaviour."""
    result_rows: list[list[object]] = []
    max_latency: dict[str, int] = {}
    write_amp: dict[str, float] = {}
    for flavour in ("ftl", "noftl"):
        db = _build_db(flavour, capacity_mib)
        _churn(db, rows, updates, gc_every, seed, cold_rows=cold_rows)
        log = db.data_device.write_service_log
        device = db.data_device
        if flavour == "ftl":
            erases = device.ftl.stats.erases
            amp = device.ftl.stats.write_amplification
        else:
            erases = device.erases
            amp = device.write_amplification
        mean = sum(log) / len(log) if log else 0.0
        max_latency[flavour] = max(log, default=0)
        write_amp[flavour] = amp
        result_rows.append([flavour, len(log), round(mean, 1),
                            percentile(log, 0.99), max(log, default=0),
                            erases, round(amp, 3)])
    return NoFtlResult(rows=result_rows, max_latency=max_latency,
                       write_amp=write_amp)
