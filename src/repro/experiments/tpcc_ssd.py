"""Exhibits F3/F4: TPC-C throughput and response time on SSD RAIDs.

Regenerates the paper's two throughput figures:

* **F3** (two-SSD stripe, small buffer): NOTPM vs. warehouse count for both
  engines.  Expected shape: both rise while the working set is cached, SI
  peaks earlier and lower; SIAS-V's peak is higher (paper: +30 %, peaking at
  a larger warehouse count) and its response times stay flat longer.
* **F4** (six-SSD stripe, large buffer): same sweep on the bigger box —
  more device parallelism rewards SIAS-V's batched read path further.

Each row carries NOTPM and the mean NewOrder response time for both engines
plus the SIAS/SI ratio, and the result object computes the peak positions so
tests and EXPERIMENTS.md can assert "SIAS-V peaks later and higher".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common import units
from repro.db.database import EngineKind
from repro.experiments import harness
from repro.experiments.render import format_table
from repro.workload.driver import DriverConfig
from repro.workload.tpcc_schema import TpccScale


@dataclass
class ThroughputPoint:
    """Both engines' results at one warehouse count."""

    warehouses: int
    sias_notpm: float
    si_notpm: float
    sias_rt_sec: float
    si_rt_sec: float


@dataclass
class ThroughputSweepResult:
    """One regenerated throughput figure."""

    setup_name: str
    points: list[ThroughputPoint]

    @property
    def rows(self) -> list[list[object]]:
        """Table rows (one per warehouse count)."""
        out: list[list[object]] = []
        for p in self.points:
            ratio = p.sias_notpm / p.si_notpm if p.si_notpm else float("inf")
            out.append([p.warehouses, round(p.sias_notpm), round(p.si_notpm),
                        round(ratio, 2), round(p.sias_rt_sec, 3),
                        round(p.si_rt_sec, 3)])
        return out

    def table(self) -> str:
        """Render the sweep."""
        return format_table(
            f"TPC-C throughput sweep on {self.setup_name}",
            ["WH", "SIAS NOTPM", "SI NOTPM", "SIAS/SI",
             "SIAS rt (s)", "SI rt (s)"],
            self.rows)

    def peak(self, engine: str) -> ThroughputPoint:
        """The sweep point with the highest NOTPM for one engine."""
        key = (lambda p: p.sias_notpm) if engine == "sias" \
            else (lambda p: p.si_notpm)
        return max(self.points, key=key)


def run(setup: harness.SystemSetup | None = None,
        warehouse_counts: tuple[int, ...] = (4, 8, 16, 24),
        duration_usec: int = 20 * units.SEC,
        scale: TpccScale | None = None,
        driver_config: DriverConfig | None = None,
        seed: int = 42) -> ThroughputSweepResult:
    """Sweep warehouse counts on one SSD setup with both engines."""
    setup = setup or harness.ssd_raid2()
    driver_config = driver_config or DriverConfig(
        clients=8, maintenance_interval_usec=8 * units.SEC)
    points: list[ThroughputPoint] = []
    for warehouses in warehouse_counts:
        sias = harness.run_tpcc(EngineKind.SIASV, setup, warehouses,
                                duration_usec, scale=scale,
                                driver_config=driver_config, seed=seed)
        si = harness.run_tpcc(EngineKind.SI, setup, warehouses,
                              duration_usec, scale=scale,
                              driver_config=driver_config, seed=seed)
        points.append(ThroughputPoint(
            warehouses=warehouses,
            sias_notpm=sias.notpm,
            si_notpm=si.notpm,
            sias_rt_sec=sias.metrics.mean_response_sec(),
            si_rt_sec=si.metrics.mean_response_sec(),
        ))
    return ThroughputSweepResult(setup_name=setup.name, points=points)


def run_f3(**kwargs) -> ThroughputSweepResult:
    """F3 preset: the two-SSD stripe."""
    kwargs.setdefault("setup", harness.ssd_raid2())
    return run(**kwargs)


def run_f4(**kwargs) -> ThroughputSweepResult:
    """F4 preset: the six-SSD stripe with a large buffer pool."""
    kwargs.setdefault("setup", harness.ssd_raid6())
    return run(**kwargs)
