"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``demo`` — narrated engine walkthrough (the quickstart, non-interactive);
* ``bench`` — run one workload comparison (engines, warehouses, seconds)
  and print throughput / response time / device I/O;
* ``exhibit`` — regenerate one paper exhibit by id (f1, t1, t2, f3, f4,
  t3, a1..a6) with quick parameters;
* ``snapshot`` — run a short workload and print the full system snapshot;
* ``serve`` — expose a live database over TCP (see ``docs/SERVER.md``);
* ``crash-sweep`` — fault-injection sweep: crash at every k-th device
  write, recover, verify invariants (see ``docs/RECOVERY.md``);
* ``chaos-sweep`` — network fault-injection sweep: break the connection
  at every k-th frame, verify settlement (see ``docs/SERVER.md``);
* ``replicate`` — replication chaos sweeps (``--mode``): leader-kill
  failover, follower-kill resync on a cascading chain, backup-source
  kill, slot eviction under lag; each verifies exactly-once survival
  and snapshot isolation (see ``docs/REPLICATION.md``);
* ``cluster`` — VID-range sharded cluster: ``start`` a supervisor +
  router, ``status`` a running router, ``bench`` TPC-C through the
  router (see ``docs/CLUSTER.md``).

Also installed as the ``repro`` console script (``pip install -e .``).
"""

from __future__ import annotations

import argparse
import sys

from repro.common import units
from repro.db.database import EngineKind
from repro.workload.driver import DriverConfig
from repro.workload.tpcc_schema import TpccScale

QUICK_SCALE = TpccScale(districts_per_warehouse=4,
                        customers_per_district=10, items=50,
                        stock_per_warehouse=50,
                        initial_orders_per_district=5)


def _cmd_demo(_args: argparse.Namespace) -> int:
    from repro.common.errors import SerializationError
    from repro.db.catalog import IndexDef
    from repro.db.database import Database
    from repro.db.schema import ColType, Schema

    db = Database.on_flash(EngineKind.SIASV)
    schema = Schema.of(("sku", ColType.INT), ("price", ColType.FLOAT))
    db.create_table("products", schema,
                    indexes=[IndexDef("pk", ("sku",), unique=True)])
    engine = db.table("products").engine

    txn = db.begin()
    ref = db.insert(txn, "products", (1, 49.0))
    db.commit(txn)
    print(f"insert  -> VID {ref}, entrypoint {engine.vidmap.get(ref)}")

    reader = db.begin()
    writer = db.begin()
    db.update(writer, "products", ref, (1, 44.0))
    db.commit(writer)
    print(f"update  -> appended a successor; old snapshot still reads "
          f"{db.read(reader, 'products', ref)[1]}")
    db.commit(reader)

    t1, t2 = db.begin(), db.begin()
    db.update(t1, "products", ref, (1, 39.0))
    try:
        db.update(t2, "products", ref, (1, 59.0))
    except SerializationError:
        print("conflict-> second concurrent updater lost "
              "(first-updater-wins)")
        db.abort(t2)
    db.commit(t1)

    engine.store.seal_working_page()
    report = db.maintenance()["products"]
    print(f"gc      -> discarded {report.records_discarded} dead versions, "
          f"reclaimed {report.pages_reclaimed} page(s)")
    db.shutdown()
    stats = db.data_device.stats
    print(f"device  -> {stats.writes} page writes, {stats.reads} reads "
          f"({db.clock.now_sec * 1000:.2f} simulated ms)")
    print("\n(run examples/quickstart.py for the fully narrated version)")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.experiments import harness
    from repro.experiments.render import format_table

    rows = []
    for engine in (EngineKind.SIASV, EngineKind.SI):
        run = harness.run_tpcc(
            engine, harness.ssd_single(), args.warehouses,
            args.seconds * units.SEC, scale=QUICK_SCALE,
            driver_config=DriverConfig(
                clients=args.clients,
                maintenance_interval_usec=5 * units.SEC))
        summary = run.metrics.summary()
        rows.append([engine.value, round(summary.notpm),
                     round(summary.mean_response_sec * 1000, 1),
                     summary.aborts, round(run.write_mib, 1),
                     round(units.mib(run.device_delta.read_bytes), 1)])
    print(format_table(
        f"TPC-C-style: {args.warehouses} WH, {args.seconds} sim-s, "
        f"{args.clients} clients",
        ["engine", "NOTPM", "mean rt (ms)", "aborts", "write MiB",
         "read MiB"],
        rows))
    return 0


_EXHIBITS = {
    "f1": ("blocktrace", dict(warehouses=3, duration_usec=6 * units.SEC)),
    "t1": ("write_reduction",
           dict(warehouses=3, durations_usec=(6 * units.SEC,))),
    "t2": ("space", dict(warehouses=3, duration_usec=6 * units.SEC)),
    "f3": ("tpcc_ssd", dict(warehouse_counts=(2, 5),
                            duration_usec=5 * units.SEC)),
    "f4": ("tpcc_ssd", dict(warehouse_counts=(2, 5),
                            duration_usec=5 * units.SEC)),
    "t3": ("tpcc_hdd", dict(warehouse_counts=(2, 4),
                            duration_usec=5 * units.SEC)),
    "f5": ("tolerable_load", dict(warehouses=4, client_counts=(4, 16),
                                  duration_usec=5 * units.SEC,
                                  pool_pages=64)),
    "a1": ("ablation_layout",
           dict(warehouses=3, duration_usec=6 * units.SEC)),
    "a2": ("ablation_threshold",
           dict(warehouses=3, duration_usec=6 * units.SEC)),
    "a3": ("ablation_scan", dict(warehouses=3,
                                 duration_usec=6 * units.SEC)),
    "a4": ("endurance", dict(warehouses=1, capacity_mib=10,
                             num_transactions=3000)),
    "a5": ("ablation_noftl", dict(rows=200, updates=10_000,
                                  capacity_mib=6, gc_every=1000)),
    "a6": ("ablation_colocation",
           dict(warehouses=3, duration_usec=6 * units.SEC)),
}


def _cmd_exhibit(args: argparse.Namespace) -> int:
    import repro.experiments as experiments

    if args.id not in _EXHIBITS:
        print(f"unknown exhibit {args.id!r}; choose from "
              f"{', '.join(sorted(_EXHIBITS))}", file=sys.stderr)
        return 2
    module_name, kwargs = _EXHIBITS[args.id]
    module = getattr(experiments, module_name)
    if module_name in ("blocktrace", "write_reduction", "space",
                       "ablation_layout", "ablation_threshold",
                       "ablation_scan", "ablation_colocation",
                       "tolerable_load"):
        kwargs = dict(kwargs, scale=QUICK_SCALE)
    if args.id == "f4":
        result = module.run(setup=experiments.ssd_raid6(pool_pages=96),
                            scale=QUICK_SCALE, **kwargs)
    elif args.id == "f3":
        result = module.run(setup=experiments.ssd_raid2(pool_pages=64),
                            scale=QUICK_SCALE, **kwargs)
    elif args.id == "t3":
        result = module.run(scale=QUICK_SCALE, **kwargs)
    elif args.id == "a4":
        result = module.run(scale=QUICK_SCALE, **kwargs)
    else:
        result = module.run(**kwargs)
    print(result.render() if hasattr(result, "render") else result.table())
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    import pathlib

    from repro.experiments.report import write_report

    results = pathlib.Path(args.results)
    if not results.is_dir():
        print(f"no results directory at {results}; run "
              "examples/reproduce_paper.py first", file=sys.stderr)
        return 2
    out = write_report(results)
    print(f"report written to {out}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.db.database import Database
    from repro.db.monitor import snapshot
    from repro.server import DatabaseServer, ServerConfig

    kind = EngineKind.SIASV if args.engine == "sias-v" else EngineKind.SI
    db = Database.on_flash(kind)
    if args.tpcc:
        from repro.workload.tpcc_schema import create_tpcc_tables
        create_tpcc_tables(db)
        print("created TPC-C tables", flush=True)
    server = DatabaseServer(db, ServerConfig(
        host=args.host, port=args.port,
        max_in_flight=args.max_in_flight,
        max_queue_depth=args.queue_depth,
        executor_workers=args.workers,
        idle_timeout_sec=args.idle_timeout,
        recover_on_start=args.recover,
        drain_timeout_sec=args.drain_timeout))
    if server.recovery_report is not None:
        rep = server.recovery_report
        print(f"recovered: {rep.committed_txns} committed, "
              f"{rep.rolled_back_txns} rolled back, "
              f"{rep.index_entries_rebuilt} index entries rebuilt",
              flush=True)
    print(f"engine workers: {server.dispatch.executor_workers}",
          flush=True)
    server.run()
    db.shutdown()
    print(snapshot(db, server=server).render())
    print("clean shutdown", flush=True)
    return 0


def _cmd_crash_sweep(args: argparse.Namespace) -> int:
    from repro.experiments import crash_sweep

    engine = {"sias-v": "siasv", "si": "si", "both": "both"}[args.engine]
    return crash_sweep.main(["--engine", engine,
                             "--stride", str(args.stride),
                             "--transfers", str(args.transfers),
                             "--accounts", str(args.accounts),
                             "--seed", str(args.seed)])


def _cmd_chaos_sweep(args: argparse.Namespace) -> int:
    from repro.experiments import chaos_sweep

    engine = {"sias-v": "siasv", "si": "si", "both": "both"}[args.engine]
    return chaos_sweep.main(["--engine", engine,
                             "--stride", str(args.stride),
                             "--transfers", str(args.transfers),
                             "--accounts", str(args.accounts),
                             "--seed", str(args.seed)])


def _cmd_replicate(args: argparse.Namespace) -> int:
    from repro.experiments import failover

    argv = ["--mode", args.mode, "--stride", str(args.stride)]
    if args.transfers is not None:
        argv += ["--transfers", str(args.transfers)]
    if args.accounts is not None:
        argv += ["--accounts", str(args.accounts)]
    if args.seed is not None:
        argv += ["--seed", str(args.seed)]
    return failover.main(argv)


def _cmd_si_check(args: argparse.Namespace) -> int:
    from repro.experiments import si_check

    argv = [args.history, "--max-violations", str(args.max_violations)]
    if args.expect_anomaly:
        argv.append("--expect-anomaly")
    return si_check.main(argv)


def _cmd_cluster(args: argparse.Namespace) -> int:
    return {"start": _cluster_start, "status": _cluster_status,
            "bench": _cluster_bench}[args.cluster_command](args)


def _cluster_start(args: argparse.Namespace) -> int:
    from repro.cluster import (ClusterRouter, RouterConfig, ShardSupervisor,
                               SupervisorConfig)

    supervisor = ShardSupervisor(SupervisorConfig(
        shards=args.shards, host=args.host, mode=args.mode, tpcc=args.tpcc,
        idle_timeout_sec=args.idle_timeout,
        drain_timeout_sec=args.drain_timeout))
    addresses = supervisor.start()
    for i, (host, port) in enumerate(addresses):
        print(f"shard {i}: {host}:{port} ({args.mode} mode)", flush=True)
    router = ClusterRouter(addresses, RouterConfig(
        host=args.host, port=args.port,
        idle_timeout_sec=args.idle_timeout,
        drain_timeout_sec=args.drain_timeout))
    try:
        router.run()
    finally:
        supervisor.stop()
    stats = router.stats
    print(f"router stopped: {stats.gtxns_begun} gtxns "
          f"({stats.commits_readonly} read-only, {stats.commits_1pc} "
          f"single-shard, {stats.commits_2pc} two-phase, "
          f"{stats.aborts} aborted)", flush=True)
    print("clean shutdown", flush=True)
    return 0


def _cluster_status(args: argparse.Namespace) -> int:
    from repro.client import RemoteDatabase

    remote = RemoteDatabase.connect(args.host, args.port, pool_size=1)
    try:
        stats = remote.server_stats()
    finally:
        remote.close()
    cluster = stats.get("cluster")
    if cluster is None:
        print(f"{args.host}:{args.port} is a single-node server, not a "
              "cluster router (try `repro cluster start`)", file=sys.stderr)
        return 2
    sessions = stats["sessions"]
    print(f"router {args.host}:{args.port}: up {stats['uptime_sec']} s, "
          f"{sessions['live']} sessions, "
          f"{sessions['in_flight_txns']} txns in flight")
    for entry in cluster["shards"]:
        state = "alive" if entry["alive"] else "DOWN"
        txns = entry["txns"]
        detail = (f"  active={txns.get('active', '?')} "
                  f"in_doubt={txns.get('in_doubt', '?')}"
                  if entry["alive"] else "")
        print(f"shard {entry['shard']}: {entry['host']}:{entry['port']} "
              f"{state}{detail}")
    router = cluster["router"]
    print(f"2pc: {router['commits_2pc']} two-phase, "
          f"{router['commits_1pc']} single-shard, "
          f"{router['commits_readonly']} read-only, "
          f"{router['aborts']} aborted; "
          f"{cluster['in_doubt']} in doubt, "
          f"{cluster['pending_decisions']} decisions pending")
    return 0


def _cluster_bench(args: argparse.Namespace) -> int:
    from repro.client import RemoteDatabase
    from repro.cluster import (ClusterRouter, RouterConfig, ShardSupervisor,
                               SupervisorConfig)
    from repro.workload.driver import TpccDriver
    from repro.workload.tpcc_data import TpccLoader
    from repro.workload.tpcc_schema import TpccScale, create_tpcc_tables

    scale = TpccScale(districts_per_warehouse=2, customers_per_district=4,
                      items=10, stock_per_warehouse=10,
                      initial_orders_per_district=2)
    supervisor = ShardSupervisor(SupervisorConfig(shards=args.shards))
    supervisor.start()
    router = ClusterRouter(supervisor.addresses, RouterConfig(port=0))
    try:
        host, port = router.start_in_background()
        print(f"{args.shards}-shard cluster behind {host}:{port}",
              flush=True)
        remote = RemoteDatabase.connect(host, port, pool_size=args.clients)
        try:
            create_tpcc_tables(remote)
            load = TpccLoader(remote, scale=scale).load(warehouses=1)
            print(f"loaded {load.rows} rows over the wire", flush=True)
            driver = TpccDriver(
                remote, warehouses=1, scale=scale,
                config=DriverConfig(
                    clients=args.clients,
                    maintenance_interval_usec=3600 * units.SEC))
            summary = driver.run_transactions(args.transactions).summary()
        finally:
            remote.close()
    finally:
        router.stop_in_background()
        supervisor.stop()
    stats = router.stats
    print(f"driver: {summary.commits} commits, {summary.aborts} aborts, "
          f"{summary.notpm:.0f} NOTPM over {summary.span_sec:.2f} sim-s")
    print(f"router: {stats.commits_2pc} two-phase, "
          f"{stats.commits_1pc} single-shard, "
          f"{stats.commits_readonly} read-only, {stats.fanouts} fan-outs")
    return 0


def _cmd_snapshot(args: argparse.Namespace) -> int:
    from repro.db.monitor import snapshot
    from repro.experiments import harness

    run = harness.run_tpcc(
        EngineKind.SIASV if args.engine == "sias-v" else EngineKind.SI,
        harness.ssd_single(), args.warehouses,
        args.seconds * units.SEC, scale=QUICK_SCALE)
    print(snapshot(run.db).render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SIAS-V reproduction: engines, workloads, exhibits")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("demo", help="narrated engine walkthrough")

    bench = sub.add_parser("bench", help="SIAS-V vs SI quick comparison")
    bench.add_argument("--warehouses", type=int, default=4)
    bench.add_argument("--seconds", type=int, default=6)
    bench.add_argument("--clients", type=int, default=8)

    exhibit = sub.add_parser("exhibit",
                             help="regenerate one paper exhibit (quick)")
    exhibit.add_argument("id", help="f1 t1 t2 f3 f4 f5 t3 a1..a6")

    snap = sub.add_parser("snapshot", help="run briefly, dump all counters")
    snap.add_argument("--engine", choices=("sias-v", "si"),
                      default="sias-v")
    snap.add_argument("--warehouses", type=int, default=3)
    snap.add_argument("--seconds", type=int, default=4)

    report = sub.add_parser("report",
                            help="assemble RESULTS/ into REPORT.md")
    report.add_argument("--results", default="RESULTS")

    serve = sub.add_parser("serve",
                           help="serve a database over TCP (docs/SERVER.md)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7654,
                       help="0 binds an ephemeral port (printed on start)")
    serve.add_argument("--engine", choices=("sias-v", "si"),
                       default="sias-v")
    serve.add_argument("--max-in-flight", type=int, default=8,
                       help="commands submitted to the engine at once")
    serve.add_argument("--workers", type=int, default=0,
                       help="engine worker threads; 0 = auto "
                            "(min(4, cpu count))")
    serve.add_argument("--queue-depth", type=int, default=64,
                       help="waiting commands beyond which load is shed")
    serve.add_argument("--idle-timeout", type=float, default=60.0,
                       help="seconds before an idle session is reaped "
                            "(<= 0 disables)")
    serve.add_argument("--drain-timeout", type=float, default=5.0,
                       help="seconds a stopping server lets in-flight "
                            "transactions finish before aborting them")
    serve.add_argument("--tpcc", action="store_true",
                       help="pre-create the nine TPC-C tables")
    serve.add_argument("--recover", action="store_true",
                       help="run crash recovery before serving "
                            "(docs/RECOVERY.md)")

    sweep = sub.add_parser("crash-sweep",
                           help="crash at every k-th write, recover, "
                                "verify (docs/RECOVERY.md)")
    sweep.add_argument("--engine", choices=("sias-v", "si", "both"),
                       default="both")
    sweep.add_argument("--stride", type=int, default=10,
                       help="crash at every stride-th device write")
    sweep.add_argument("--transfers", type=int, default=120)
    sweep.add_argument("--accounts", type=int, default=20)
    sweep.add_argument("--seed", type=int, default=7)

    chaos = sub.add_parser("chaos-sweep",
                           help="break the connection at every k-th "
                                "network frame, verify settlement "
                                "(docs/SERVER.md)")
    chaos.add_argument("--engine", choices=("sias-v", "si", "both"),
                       default="both")
    chaos.add_argument("--stride", type=int, default=1,
                       help="fault at every stride-th network frame")
    chaos.add_argument("--transfers", type=int, default=30)
    chaos.add_argument("--accounts", type=int, default=8)
    chaos.add_argument("--seed", type=int, default=11)

    repl = sub.add_parser("replicate",
                          help="replication chaos sweeps: leader-kill "
                               "failover, self-healing resync on a "
                               "cascading chain, slot eviction under "
                               "lag (docs/REPLICATION.md)")
    repl.add_argument("--mode",
                      choices=("failover", "resync", "resync-source",
                               "eviction"),
                      default="failover",
                      help="failover: kill the leader at every shipped "
                           "frame; resync: kill the progressing "
                           "follower at every frame and backup chunk; "
                           "resync-source: kill the backup source "
                           "mid-backup; eviction: bounded retention "
                           "under a lagging follower")
    repl.add_argument("--stride", type=int, default=1,
                      help="kill at every stride-th eligible event")
    repl.add_argument("--transfers", type=int, default=None)
    repl.add_argument("--accounts", type=int, default=None)
    repl.add_argument("--seed", type=int, default=None)

    sicheck = sub.add_parser("si-check",
                             help="replay a recorded history through the "
                                  "black-box snapshot-isolation checker "
                                  "(docs/CLUSTER.md)")
    sicheck.add_argument("history",
                         help="JSONL history file "
                              "(repro.experiments.si_check format)")
    sicheck.add_argument("--expect-anomaly", action="store_true",
                         help="exit 0 only if the checker finds "
                              "violations (legacy-mode canary)")
    sicheck.add_argument("--max-violations", type=int, default=50,
                         help="stop after reporting this many")

    cluster = sub.add_parser("cluster",
                             help="VID-range sharded cluster "
                                  "(docs/CLUSTER.md)")
    csub = cluster.add_subparsers(dest="cluster_command", required=True)

    cstart = csub.add_parser("start",
                             help="start N shards and a router in the "
                                  "foreground")
    cstart.add_argument("--shards", type=int, default=2)
    cstart.add_argument("--host", default="127.0.0.1")
    cstart.add_argument("--port", type=int, default=7654,
                        help="router port; 0 binds an ephemeral port")
    cstart.add_argument("--mode", choices=("thread", "process"),
                        default="thread",
                        help="shards as in-process threads or `repro "
                             "serve` subprocesses")
    cstart.add_argument("--tpcc", action="store_true",
                        help="pre-create the nine TPC-C tables on every "
                             "shard")
    cstart.add_argument("--idle-timeout", type=float, default=60.0)
    cstart.add_argument("--drain-timeout", type=float, default=5.0)

    cstatus = csub.add_parser("status",
                              help="query a running router's shard "
                                   "health and 2PC counters")
    cstatus.add_argument("--host", default="127.0.0.1")
    cstatus.add_argument("--port", type=int, default=7654)

    cbench = csub.add_parser("bench",
                             help="TPC-C through an ephemeral in-process "
                                  "cluster")
    cbench.add_argument("--shards", type=int, default=2)
    cbench.add_argument("--transactions", type=int, default=60)
    cbench.add_argument("--clients", type=int, default=4)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    handlers = {
        "demo": _cmd_demo,
        "bench": _cmd_bench,
        "exhibit": _cmd_exhibit,
        "snapshot": _cmd_snapshot,
        "report": _cmd_report,
        "serve": _cmd_serve,
        "crash-sweep": _cmd_crash_sweep,
        "chaos-sweep": _cmd_chaos_sweep,
        "replicate": _cmd_replicate,
        "si-check": _cmd_si_check,
        "cluster": _cmd_cluster,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
