"""Relation schemas: typed columns and row validation.

Rows are plain tuples positionally matched to the schema.  Three column
types cover the TPC-C-style workloads (and most OLTP schemas): 64-bit
integers, doubles and variable-length strings.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.common.errors import SchemaError


class ColType(Enum):
    """Supported column types."""

    INT = "int"
    FLOAT = "float"
    STR = "str"

    def check(self, value: object, column: str) -> None:
        """Raise :class:`SchemaError` if ``value`` has the wrong type."""
        if self is ColType.INT:
            if not isinstance(value, int) or isinstance(value, bool):
                raise SchemaError(f"column {column}: {value!r} is not INT")
        elif self is ColType.FLOAT:
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise SchemaError(f"column {column}: {value!r} is not FLOAT")
        elif self is ColType.STR:
            if not isinstance(value, str):
                raise SchemaError(f"column {column}: {value!r} is not STR")


@dataclass(frozen=True)
class Column:
    """One named, typed column."""

    name: str
    type: ColType


@dataclass(frozen=True)
class Schema:
    """Ordered, named, typed columns of a relation."""

    columns: tuple[Column, ...]

    @staticmethod
    def of(*spec: tuple[str, ColType]) -> "Schema":
        """Build a schema from ``("name", ColType)`` pairs."""
        return Schema(tuple(Column(name, type_) for name, type_ in spec))

    def __post_init__(self) -> None:
        names = [c.name for c in self.columns]
        if len(names) != len(set(names)):
            raise SchemaError(f"duplicate column names in {names}")
        if not self.columns:
            raise SchemaError("schema needs at least one column")

    def __len__(self) -> int:
        return len(self.columns)

    def position(self, name: str) -> int:
        """Ordinal of column ``name`` (raises on unknown names)."""
        for i, column in enumerate(self.columns):
            if column.name == name:
                return i
        raise SchemaError(f"unknown column {name!r}")

    def validate(self, row: tuple) -> None:
        """Raise :class:`SchemaError` unless ``row`` matches the schema."""
        if len(row) != len(self.columns):
            raise SchemaError(
                f"row has {len(row)} values, schema has {len(self.columns)}")
        for column, value in zip(self.columns, row):
            column.type.check(value, column.name)

    def project(self, row: tuple, names: list[str]) -> tuple:
        """Extract the named columns from ``row``, in the given order."""
        return tuple(row[self.position(n)] for n in names)
