"""Binary row codec.

Rows serialise positionally against their schema: INTs as signed 64-bit,
FLOATs as doubles, STRs as a 2-byte length plus UTF-8 bytes.  The codec is
deliberately simple (no nulls, no compression) — payload size realism is all
the experiments need, and round-tripping is property-tested.
"""

from __future__ import annotations

import struct

from repro.common.errors import SchemaError
from repro.db.schema import ColType, Schema

_INT = struct.Struct("<q")
_FLOAT = struct.Struct("<d")
_STRLEN = struct.Struct("<H")


class RowCodec:
    """Encodes and decodes rows of one schema."""

    def __init__(self, schema: Schema) -> None:
        self.schema = schema

    def encode(self, row: tuple) -> bytes:
        """Validate and serialise a row."""
        self.schema.validate(row)
        parts: list[bytes] = []
        for column, value in zip(self.schema.columns, row):
            if column.type is ColType.INT:
                parts.append(_INT.pack(value))
            elif column.type is ColType.FLOAT:
                parts.append(_FLOAT.pack(float(value)))
            else:
                raw = value.encode("utf-8")
                if len(raw) > 0xFFFF:
                    raise SchemaError(
                        f"column {column.name}: string exceeds 64 KiB")
                parts.append(_STRLEN.pack(len(raw)) + raw)
        return b"".join(parts)

    def decode(self, data: bytes) -> tuple:
        """Deserialise a row (raises :class:`SchemaError` on truncation)."""
        values: list[object] = []
        offset = 0
        for column in self.schema.columns:
            if column.type is ColType.INT:
                values.append(self._unpack(_INT, data, offset, column.name)[0])
                offset += _INT.size
            elif column.type is ColType.FLOAT:
                values.append(
                    self._unpack(_FLOAT, data, offset, column.name)[0])
                offset += _FLOAT.size
            else:
                (length,) = self._unpack(_STRLEN, data, offset, column.name)
                offset += _STRLEN.size
                if offset + length > len(data):
                    raise SchemaError(
                        f"column {column.name}: string truncated")
                values.append(data[offset:offset + length].decode("utf-8"))
                offset += length
        if offset != len(data):
            raise SchemaError(
                f"{len(data) - offset} trailing bytes after last column")
        return tuple(values)

    def fixed_field(self, name: str) -> tuple[int, struct.Struct] | None:
        """``(byte offset, struct)`` of a directly-addressable column.

        A column sits at a fixed payload offset when it and every column
        before it are fixed width (INT/FLOAT) — the predicate-pushdown
        probe then unpacks it straight out of the encoded payload.  A
        preceding STR makes the offset row-dependent; returns None and
        callers decode the whole row instead.
        """
        offset = 0
        for column in self.schema.columns:
            if column.type is ColType.STR:
                return None
            fmt = _INT if column.type is ColType.INT else _FLOAT
            if column.name == name:
                return offset, fmt
            offset += fmt.size
        return None

    @staticmethod
    def _unpack(fmt: struct.Struct, data: bytes, offset: int,
                column: str) -> tuple:
        if offset + fmt.size > len(data):
            raise SchemaError(f"column {column}: value truncated")
        return fmt.unpack_from(data, offset)
