"""Database-level crash simulation and recovery.

``crash(db)`` throws away everything a power loss would: the buffer pool,
in-flight transactions, the WAL tail (both the unflushed byte buffer *and*
the unforced record history — a record the leader never forced is not
durable), all in-memory index trees, and the engines' volatile structures
(VIDmap, working pages, FSM).  ``recover(db)`` brings the database back:

* transaction fates re-derived from the durable WAL prefix (a COMMIT record
  is the durability point; anything else is treated as aborted).  The
  report distinguishes transactions that *settled before* the crash
  (``aborted_txns`` — the application saw the abort) from those the crash
  interrupted and recovery rolled back (``rolled_back_txns`` — the
  application may have seen nothing, or a hang),
* **SIAS-V** relations run the full engine recovery of
  :mod:`repro.core.recovery` — device rescan (tolerating torn page seals),
  VIDmap rebuild, WAL redo of versions lost with the working page,
* **SI baseline** relations rebuild their FSM from the surviving heap
  pages.  Heap mutations since the last flush of each page are lost: the
  baseline is recovered *checkpoint-consistent* (PostgreSQL would replay
  physical page images from its WAL; reproducing ARIES physical redo is out
  of scope and orthogonal to the paper — run a checkpoint before crashing
  to make the baseline lose nothing).  The asymmetry is itself a result:
  SIAS-V needs no page images because sealed pages are immutable.
* all index trees rebuilt by scanning the recovered relations.

Redo is bounded: :meth:`~repro.wal.log.WriteAheadLog.durable_records`
starts at the last durable CHECKPOINT record, so recovery work is
proportional to activity since the last checkpoint, not to history.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baseline.engine import SiEngine
from repro.core.engine import SiasVEngine
from repro.core.recovery import (
    SiasRecoveryReport,
    crash_engine,
    recover_engine,
)
from repro.common.errors import PageCorruptError, ReadUnwrittenError
from repro.db.database import Database
from repro.pages.base import Page
from repro.pages.slotted import SlottedHeapPage
from repro.txn.commitlog import CommitLog, TxnState
from repro.wal.records import WalRecordType


@dataclass
class RecoveryReport:
    """Outcome of one database recovery."""

    committed_txns: int = 0
    #: settled *before* the crash: a durable record trail but the clog
    #: already said ABORTED (first-updater-wins losers, explicit rollbacks)
    aborted_txns: int = 0
    #: interrupted by the crash and settled *by recovery* (no durable
    #: COMMIT record — includes committed-but-not-forced transactions)
    rolled_back_txns: int = 0
    #: reinstated in-doubt (prepared, undecided) transactions awaiting
    #: their coordinator's decision
    in_doubt_txns: int = 0
    #: WAL data records re-applied for in-doubt transactions
    prepared_redo: int = 0
    engine_reports: dict[str, SiasRecoveryReport] = field(
        default_factory=dict)
    heap_pages_recovered: dict[str, int] = field(default_factory=dict)
    #: heap pages whose flush never completed (gap or torn) — re-registered
    #: empty; their rows are lost, the baseline's by-design asymmetry
    heap_pages_lost: dict[str, int] = field(default_factory=dict)
    index_entries_rebuilt: int = 0


def crash(db: Database) -> None:
    """Simulate a power loss: drop every volatile structure."""
    db.buffer.invalidate_all()  # dirty pages die with the page cache
    db.wal.lose_tail()          # unforced WAL records die with their buffer
    for relation in db.tables.values():
        # index structures are in-memory: recreate them empty
        for index_name, (definition, _tree) in list(
                relation.indexes.items()):
            del relation.indexes[index_name]
            relation.add_index(definition)
        if isinstance(relation.engine, SiasVEngine):
            crash_engine(relation.engine)
    # Empty the lock table but keep its configuration — a fresh LockTable()
    # would silently discard wait_timeout_sec and demote a multi-worker
    # server back to immediate first-updater-wins aborts after recovery.
    db.txn_mgr.locks.clear()
    db.txn_mgr._active.clear()
    # prepared-txn handles (undo chains, locks) are volatile too; recovery
    # reinstates them from the durable PREPARE records
    db.txn_mgr.prepared.clear()


def recover(db: Database) -> RecoveryReport:
    """Bring a crashed database back to a consistent, queryable state."""
    report = RecoveryReport()
    durable = db.wal.durable_records()
    in_doubt = _settle_transaction_fates(db.txn_mgr.clog, durable, report)
    for name, relation in db.tables.items():
        if isinstance(relation.engine, SiasVEngine):
            mine = [r for r in durable
                    if r.relation_id == relation.relation_id
                    and r.type in (WalRecordType.INSERT,
                                   WalRecordType.UPDATE,
                                   WalRecordType.DELETE)]
            report.engine_reports[name] = recover_engine(relation.engine,
                                                         mine)
        else:
            recovered, lost = _recover_heap(relation.engine)
            report.heap_pages_recovered[name] = recovered
            report.heap_pages_lost[name] = lost
    # Index rebuild must precede prepared-txn reinstatement: the rebuild
    # scan sees committed state only, and an in-doubt update that kept its
    # key must find the committed ``(key, vid)`` entry already present —
    # otherwise reinstatement would claim it, and its abort-undo would
    # strip the committed row from the index.
    report.index_entries_rebuilt = _rebuild_indexes(db)
    _reinstate_prepared(db, durable, in_doubt, report)
    return report


def _settle_transaction_fates(clog: CommitLog, durable,
                              report) -> dict[int, int]:
    """Settle fates; returns in-doubt ``{txid: gtxid}`` left undecided.

    A durable PREPARE record with no durable decision leaves its
    transaction *in doubt*: recovery must neither commit nor abort it —
    that call belongs to the coordinator (presumed abort: no coordinator
    decision on record means abort, but only the coordinator says so).
    """
    committed = {r.txid for r in durable
                 if r.type is WalRecordType.COMMIT}
    aborted = {r.txid for r in durable
               if r.type is WalRecordType.ABORT}
    prepared = {r.txid: r.item_id for r in durable
                if r.type is WalRecordType.PREPARE}
    in_doubt: dict[int, int] = {}
    # CHECKPOINT records carry txid -1 (no transaction); keep them out of
    # the fate bookkeeping.
    seen = {r.txid for r in durable if r.txid >= 0}
    for txid in seen | set(clog._states):
        state = clog._states.get(txid)
        if state is TxnState.IN_PROGRESS:
            if txid in committed:
                # forced COMMIT record but the clog flip was lost: the
                # transaction *was* durably committed — finish the flip.
                clog.set_committed(txid)
            elif txid in prepared and txid not in aborted:
                # durable vote, no durable decision: back in doubt (the
                # clog flip to PREPARED was lost with the crash)
                clog.set_prepared(txid)
                in_doubt[txid] = prepared[txid]
            else:
                # in flight at the crash with no durable COMMIT: recovery
                # settles its fate now.
                clog.set_aborted(txid)
                report.rolled_back_txns += 1
        elif state is TxnState.PREPARED:
            if txid in committed:
                clog.set_committed(txid)
            elif txid in aborted:
                clog.set_aborted(txid)
                report.rolled_back_txns += 1
            else:
                in_doubt[txid] = prepared.get(txid, -1)
        elif state is TxnState.ABORTED and txid in seen:
            # settled before the crash; counted separately from rollbacks
            report.aborted_txns += 1
        if txid in committed:
            report.committed_txns += 1
    report.in_doubt_txns = len(in_doubt)
    return in_doubt


def _reinstate_prepared(db: Database, durable, in_doubt: dict[int, int],
                        report: RecoveryReport) -> None:
    """Rebuild in-doubt transactions: versions, entrypoints, locks, undo.

    The committed redo pass deliberately skips prepared transactions'
    records (they are not committed), so their versions — lost with the
    working page — are re-appended here, entrypoints swung to them with
    undo actions that swing back on an abort decision, item locks
    re-acquired (first-updater-wins must keep holding off conflicting
    writers while the fate is undecided), and index entries re-inserted
    with undo.  The rebuilt :class:`~repro.txn.manager.Transaction`
    handles land back in the manager's active + prepared registries, which
    keeps the GC horizon and checkpoint anchor pinned below their
    versions until the coordinator's decision arrives.

    Versions are re-appended unconditionally (even if the original copy
    made it onto a sealed page): the old copy is unreferenced garbage for
    the next GC pass, exactly like an aborted version, and redo stays
    independent of where the crash fell relative to the page seal.
    """
    if not in_doubt:
        return
    from repro.pages.layout import VersionRecord
    from repro.txn.manager import Transaction, TxnPhase
    from repro.txn.snapshot import Snapshot

    mgr = db.txn_mgr
    by_rel = {rel.relation_id: rel for rel in db.tables.values()}
    txns = {
        txid: Transaction(
            txid=txid,
            snapshot=Snapshot(txid=txid, concurrent=frozenset()),
            gtxid=(gtxid if gtxid >= 0 else None))
        for txid, gtxid in in_doubt.items()}
    for record in durable:
        if record.type not in (WalRecordType.INSERT, WalRecordType.UPDATE,
                               WalRecordType.DELETE):
            continue
        txn = txns.get(record.txid)
        if txn is None:
            continue
        relation = by_rel.get(record.relation_id)
        if relation is None or not isinstance(relation.engine, SiasVEngine):
            continue
        engine = relation.engine
        vid = record.item_id
        mgr.locks.acquire((relation.relation_id, vid), txn.txid)
        current_tid = engine.vidmap.get(vid)
        version = VersionRecord(
            create_ts=record.txid,
            vid=vid,
            pred=current_tid,
            tombstone=record.type is WalRecordType.DELETE,
            payload=record.payload,
        )
        new_tid = engine.store.append(version)
        engine.vidmap.set(vid, new_tid)
        txn.register_undo(
            lambda e=engine, v=vid, t=current_tid: e._undo_entrypoint(v, t))
        if vid >= engine.allocator.high_water:
            engine.allocator.allocate_block(
                vid + 1 - engine.allocator.high_water)
        if record.type is not WalRecordType.DELETE:
            row = relation.codec.decode(record.payload)
            for definition, tree in relation.indexes.values():
                key = definition.key_of(relation.schema, row)
                if not tree.contains(key, vid):
                    tree.insert(key, vid)
                    txn.register_undo(
                        lambda t=tree, k=key, r=vid: t.delete(k, r))
        txn.writes += 1
        report.prepared_redo += 1
    for txn in txns.values():
        txn.phase = TxnPhase.PREPARED
        mgr._active[txn.txid] = txn
        mgr.prepared[txn.txid] = txn


def _recover_heap(engine: SiEngine) -> tuple[int, int]:
    """Rebuild the FSM (and page cache) from surviving heap pages.

    Pages are classified up to the high-water mark — the greatest page
    number with *any* device content.  Below it, an unwritten gap (the
    background writer flushes out of order, so page 7 can hit the device
    before page 3) or a torn flush is a real page whose content is lost:
    it is re-registered as a fresh empty page so the FSM can place rows
    there again.  Above the high-water mark lie never-used extent-tail
    addresses, which stay unregistered.

    Returns ``(recovered, lost)`` page counts.
    """
    heap = engine.heap
    tablespace = heap.buffer.tablespace
    allocated = tablespace.file_pages(heap.file_id)
    heap.fsm = type(heap.fsm)()
    survivors: dict[int, SlottedHeapPage] = {}
    high = -1
    for page_no in range(allocated):
        lba = tablespace.lba_of(heap.file_id, page_no)
        try:
            raw = tablespace.read_page(lba)
        except ReadUnwrittenError:
            continue  # gap: flushed out of order, or never flushed
        try:
            page = Page.from_bytes(raw)
        except PageCorruptError:
            high = max(high, page_no)  # torn flush: content present, lost
            continue
        assert isinstance(page, SlottedHeapPage)
        survivors[page_no] = page
        high = max(high, page_no)
    recovered = 0
    lost = 0
    for page_no in range(high + 1):
        page = survivors.get(page_no)
        if page is not None:
            heap.buffer.put_clean(heap.file_id, page_no, page)
            recovered += 1
        else:
            page = SlottedHeapPage(page_no, heap.config.page_size)
            heap.buffer.put_dirty(heap.file_id, page_no, page)
            lost += 1
        heap.fsm.register_page(page_no, page.free_bytes())
    return recovered, lost


def _rebuild_indexes(db: Database) -> int:
    """Repopulate every index tree from a committed-state scan.

    Runs before :func:`_reinstate_prepared` (see :func:`recover`), so the
    scan sees the last committed version of every item and in-doubt
    entries are layered on top with their abort-undo hooks.
    """
    rebuilt = 0
    txn = db.begin()
    for name, relation in db.tables.items():
        for ref, row in db.scan(txn, name):
            for definition, tree in relation.indexes.values():
                key = definition.key_of(relation.schema, row)
                if not tree.contains(key, ref):
                    tree.insert(key, ref)
                    rebuilt += 1
    db.commit(txn)
    return rebuilt
