"""Database-level crash simulation and recovery.

``crash(db)`` throws away everything a power loss would: the buffer pool,
in-flight transactions, the WAL tail (both the unflushed byte buffer *and*
the unforced record history — a record the leader never forced is not
durable), all in-memory index trees, and the engines' volatile structures
(VIDmap, working pages, FSM).  ``recover(db)`` brings the database back:

* transaction fates re-derived from the durable WAL prefix (a COMMIT record
  is the durability point; anything else is treated as aborted).  The
  report distinguishes transactions that *settled before* the crash
  (``aborted_txns`` — the application saw the abort) from those the crash
  interrupted and recovery rolled back (``rolled_back_txns`` — the
  application may have seen nothing, or a hang),
* **SIAS-V** relations run the full engine recovery of
  :mod:`repro.core.recovery` — device rescan (tolerating torn page seals),
  VIDmap rebuild, WAL redo of versions lost with the working page,
* **SI baseline** relations rebuild their FSM from the surviving heap
  pages.  Heap mutations since the last flush of each page are lost: the
  baseline is recovered *checkpoint-consistent* (PostgreSQL would replay
  physical page images from its WAL; reproducing ARIES physical redo is out
  of scope and orthogonal to the paper — run a checkpoint before crashing
  to make the baseline lose nothing).  The asymmetry is itself a result:
  SIAS-V needs no page images because sealed pages are immutable.
* all index trees rebuilt by scanning the recovered relations.

Redo is bounded: :meth:`~repro.wal.log.WriteAheadLog.durable_records`
starts at the last durable CHECKPOINT record, so recovery work is
proportional to activity since the last checkpoint, not to history.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baseline.engine import SiEngine
from repro.core.engine import SiasVEngine
from repro.core.recovery import (
    SiasRecoveryReport,
    crash_engine,
    recover_engine,
)
from repro.common.errors import PageCorruptError, ReadUnwrittenError
from repro.db.database import Database
from repro.pages.base import Page
from repro.pages.slotted import SlottedHeapPage
from repro.txn.commitlog import CommitLog, TxnState
from repro.wal.records import WalRecordType


@dataclass
class RecoveryReport:
    """Outcome of one database recovery."""

    committed_txns: int = 0
    #: settled *before* the crash: a durable record trail but the clog
    #: already said ABORTED (first-updater-wins losers, explicit rollbacks)
    aborted_txns: int = 0
    #: interrupted by the crash and settled *by recovery* (no durable
    #: COMMIT record — includes committed-but-not-forced transactions)
    rolled_back_txns: int = 0
    engine_reports: dict[str, SiasRecoveryReport] = field(
        default_factory=dict)
    heap_pages_recovered: dict[str, int] = field(default_factory=dict)
    #: heap pages whose flush never completed (gap or torn) — re-registered
    #: empty; their rows are lost, the baseline's by-design asymmetry
    heap_pages_lost: dict[str, int] = field(default_factory=dict)
    index_entries_rebuilt: int = 0


def crash(db: Database) -> None:
    """Simulate a power loss: drop every volatile structure."""
    db.buffer.invalidate_all()  # dirty pages die with the page cache
    db.wal.lose_tail()          # unforced WAL records die with their buffer
    for relation in db.tables.values():
        # index structures are in-memory: recreate them empty
        for index_name, (definition, _tree) in list(
                relation.indexes.items()):
            del relation.indexes[index_name]
            relation.add_index(definition)
        if isinstance(relation.engine, SiasVEngine):
            crash_engine(relation.engine)
    # Empty the lock table but keep its configuration — a fresh LockTable()
    # would silently discard wait_timeout_sec and demote a multi-worker
    # server back to immediate first-updater-wins aborts after recovery.
    db.txn_mgr.locks.clear()
    db.txn_mgr._active.clear()


def recover(db: Database) -> RecoveryReport:
    """Bring a crashed database back to a consistent, queryable state."""
    report = RecoveryReport()
    durable = db.wal.durable_records()
    _settle_transaction_fates(db.txn_mgr.clog, durable, report)
    for name, relation in db.tables.items():
        if isinstance(relation.engine, SiasVEngine):
            mine = [r for r in durable
                    if r.relation_id == relation.relation_id
                    and r.type in (WalRecordType.INSERT,
                                   WalRecordType.UPDATE,
                                   WalRecordType.DELETE)]
            report.engine_reports[name] = recover_engine(relation.engine,
                                                         mine)
        else:
            recovered, lost = _recover_heap(relation.engine)
            report.heap_pages_recovered[name] = recovered
            report.heap_pages_lost[name] = lost
    report.index_entries_rebuilt = _rebuild_indexes(db)
    return report


def _settle_transaction_fates(clog: CommitLog, durable, report) -> None:
    committed = {r.txid for r in durable
                 if r.type is WalRecordType.COMMIT}
    # CHECKPOINT records carry txid -1 (no transaction); keep them out of
    # the fate bookkeeping.
    seen = {r.txid for r in durable if r.txid >= 0}
    for txid in seen | set(clog._states):
        state = clog._states.get(txid)
        if state is TxnState.IN_PROGRESS:
            if txid in committed:
                # forced COMMIT record but the clog flip was lost: the
                # transaction *was* durably committed — finish the flip.
                clog.set_committed(txid)
            else:
                # in flight at the crash with no durable COMMIT: recovery
                # settles its fate now.
                clog.set_aborted(txid)
                report.rolled_back_txns += 1
        elif state is TxnState.ABORTED and txid in seen:
            # settled before the crash; counted separately from rollbacks
            report.aborted_txns += 1
        if txid in committed:
            report.committed_txns += 1


def _recover_heap(engine: SiEngine) -> tuple[int, int]:
    """Rebuild the FSM (and page cache) from surviving heap pages.

    Pages are classified up to the high-water mark — the greatest page
    number with *any* device content.  Below it, an unwritten gap (the
    background writer flushes out of order, so page 7 can hit the device
    before page 3) or a torn flush is a real page whose content is lost:
    it is re-registered as a fresh empty page so the FSM can place rows
    there again.  Above the high-water mark lie never-used extent-tail
    addresses, which stay unregistered.

    Returns ``(recovered, lost)`` page counts.
    """
    heap = engine.heap
    tablespace = heap.buffer.tablespace
    allocated = tablespace.file_pages(heap.file_id)
    heap.fsm = type(heap.fsm)()
    survivors: dict[int, SlottedHeapPage] = {}
    high = -1
    for page_no in range(allocated):
        lba = tablespace.lba_of(heap.file_id, page_no)
        try:
            raw = tablespace.read_page(lba)
        except ReadUnwrittenError:
            continue  # gap: flushed out of order, or never flushed
        try:
            page = Page.from_bytes(raw)
        except PageCorruptError:
            high = max(high, page_no)  # torn flush: content present, lost
            continue
        assert isinstance(page, SlottedHeapPage)
        survivors[page_no] = page
        high = max(high, page_no)
    recovered = 0
    lost = 0
    for page_no in range(high + 1):
        page = survivors.get(page_no)
        if page is not None:
            heap.buffer.put_clean(heap.file_id, page_no, page)
            recovered += 1
        else:
            page = SlottedHeapPage(page_no, heap.config.page_size)
            heap.buffer.put_dirty(heap.file_id, page_no, page)
            lost += 1
        heap.fsm.register_page(page_no, page.free_bytes())
    return recovered, lost


def _rebuild_indexes(db: Database) -> int:
    """Repopulate every index tree from a post-recovery scan."""
    rebuilt = 0
    txn = db.begin()
    for name, relation in db.tables.items():
        for ref, row in db.scan(txn, name):
            for definition, tree in relation.indexes.values():
                tree.insert(definition.key_of(relation.schema, row), ref)
                rebuilt += 1
    db.commit(txn)
    return rebuilt
