"""Database-level crash simulation and recovery.

``crash(db)`` throws away everything a power loss would: the buffer pool,
in-flight transactions, the WAL tail, all in-memory index trees, and the
engines' volatile structures (VIDmap, working pages, FSM).  ``recover(db)``
brings the database back:

* transaction fates re-derived from the durable WAL prefix (a COMMIT record
  is the durability point; anything else is treated as aborted),
* **SIAS-V** relations run the full engine recovery of
  :mod:`repro.core.recovery` — device rescan, VIDmap rebuild, WAL redo of
  versions lost with the working page,
* **SI baseline** relations rebuild their FSM from the surviving heap pages.
  Heap mutations since the last flush of each page are lost: the baseline
  is recovered *checkpoint-consistent* (PostgreSQL would replay physical
  page images from its WAL; reproducing ARIES physical redo is out of scope
  and orthogonal to the paper — run a checkpoint before crashing to make
  the baseline lose nothing).  The asymmetry is itself a result: SIAS-V
  needs no page images because sealed pages are immutable.
* all index trees rebuilt by scanning the recovered relations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baseline.engine import SiEngine
from repro.core.engine import SiasVEngine
from repro.core.recovery import (
    SiasRecoveryReport,
    crash_engine,
    recover_engine,
)
from repro.common.errors import ReadUnwrittenError
from repro.db.database import Database
from repro.pages.base import Page
from repro.pages.slotted import SlottedHeapPage
from repro.txn.commitlog import CommitLog, TxnState
from repro.wal.records import WalRecordType


@dataclass
class RecoveryReport:
    """Outcome of one database recovery."""

    committed_txns: int = 0
    aborted_txns: int = 0
    engine_reports: dict[str, SiasRecoveryReport] = field(
        default_factory=dict)
    heap_pages_recovered: dict[str, int] = field(default_factory=dict)
    index_entries_rebuilt: int = 0


def crash(db: Database) -> None:
    """Simulate a power loss: drop every volatile structure."""
    db.buffer.invalidate_all()  # dirty pages die with the page cache
    db.wal._buffer.clear()      # the unforced WAL tail dies too
    for relation in db.tables.values():
        # index structures are in-memory: recreate them empty
        for index_name, (definition, _tree) in list(
                relation.indexes.items()):
            del relation.indexes[index_name]
            relation.add_index(definition)
        if isinstance(relation.engine, SiasVEngine):
            crash_engine(relation.engine)
    db.txn_mgr.locks = type(db.txn_mgr.locks)()
    db.txn_mgr._active.clear()


def recover(db: Database) -> RecoveryReport:
    """Bring a crashed database back to a consistent, queryable state."""
    report = RecoveryReport()
    durable = db.wal.durable_records()
    _settle_transaction_fates(db.txn_mgr.clog, durable, report)
    for name, relation in db.tables.items():
        if isinstance(relation.engine, SiasVEngine):
            mine = [r for r in durable
                    if r.relation_id == relation.relation_id
                    and r.type in (WalRecordType.INSERT,
                                   WalRecordType.UPDATE,
                                   WalRecordType.DELETE)]
            report.engine_reports[name] = recover_engine(relation.engine,
                                                         mine)
        else:
            report.heap_pages_recovered[name] = _recover_heap(
                relation.engine)
    report.index_entries_rebuilt = _rebuild_indexes(db)
    return report


def _settle_transaction_fates(clog: CommitLog, durable, report) -> None:
    committed = {r.txid for r in durable
                 if r.type is WalRecordType.COMMIT}
    seen = {r.txid for r in durable}
    for txid in seen | set(clog._states):
        state = clog._states.get(txid)
        if state is TxnState.IN_PROGRESS:
            if txid in committed:
                clog.set_committed(txid)
            else:
                clog.set_aborted(txid)
        if txid in committed:
            report.committed_txns += 1
    report.aborted_txns = len(seen - committed)


def _recover_heap(engine: SiEngine) -> int:
    """Rebuild the FSM (and page cache) from surviving heap pages."""
    tablespace = engine.heap.buffer.tablespace
    allocated = tablespace.file_pages(engine.heap.file_id)
    engine.heap.fsm = type(engine.heap.fsm)()
    recovered = 0
    for page_no in range(allocated):
        lba = tablespace.lba_of(engine.heap.file_id, page_no)
        try:
            raw = tablespace.device.read_page(lba)
        except ReadUnwrittenError:
            break  # pages are flushed in order; nothing beyond this point
        page = Page.from_bytes(raw)
        assert isinstance(page, SlottedHeapPage)
        engine.heap.buffer.put_clean(engine.heap.file_id, page_no, page)
        engine.heap.fsm.register_page(page_no, page.free_bytes())
        recovered += 1
    return recovered


def _rebuild_indexes(db: Database) -> int:
    """Repopulate every index tree from a post-recovery scan."""
    rebuilt = 0
    txn = db.begin()
    for name, relation in db.tables.items():
        for ref, row in db.scan(txn, name):
            for definition, tree in relation.indexes.values():
                tree.insert(definition.key_of(relation.schema, row), ref)
                rebuilt += 1
    db.commit(txn)
    return rebuilt
