"""The database facade: the library's primary public API.

A :class:`Database` wires together one storage algorithm (SIAS-V or the SI
baseline), the shared substrates (device, tablespace, buffer pool, WAL,
transaction manager, background writer, checkpointer) and per-relation
indexes.  The two engine kinds are interchangeable behind this facade —
identical workloads run against both, which is how every experiment isolates
the storage algorithm.

Typical use::

    from repro.db import Database, EngineKind, IndexDef
    from repro.db.schema import Schema, ColType

    db = Database.on_flash(EngineKind.SIASV)
    schema = Schema.of(("id", ColType.INT), ("balance", ColType.FLOAT))
    db.create_table("accounts", schema,
                    indexes=[IndexDef("pk", ("id",), unique=True)])
    txn = db.begin()
    ref = db.insert(txn, "accounts", (1, 100.0))
    db.commit(txn)
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass
from enum import Enum
from typing import Callable, Iterator

from repro.baseline.engine import SiEngine
from repro.baseline.vacuum import Vacuum, VacuumReport
from repro.buffer.background_writer import BackgroundWriter
from repro.buffer.checkpointer import Checkpointer
from repro.buffer.manager import BufferManager
from repro.common.clock import SimClock
from repro.common.config import FlushThreshold, SystemConfig
from repro.common.errors import SchemaError
from repro.core.engine import SiasVEngine
from repro.core.gc import GarbageCollector, GcReport
from repro.core.vecscan import (
    AGGREGATE_OPS,
    fold_values,
    row_matcher,
    row_projection,
    vec_aggregate,
    vec_scan,
    vec_scan_batch,
)
from repro.db.catalog import IndexDef, Relation
from repro.db.row import RowCodec
from repro.db.schema import Schema
from repro.pages.layout import Tid
from repro.storage.device import BlockDevice
from repro.storage.flash import FlashDevice
from repro.storage.hdd import HddDevice
from repro.storage.tablespace import Tablespace
from repro.storage.trace import TraceRecorder
from repro.txn.manager import Transaction, TransactionManager
from repro.wal.log import WriteAheadLog

#: Item handle: a VID (int) under SIAS-V, a Tid under the SI baseline.
ItemRef = int | Tid


class EngineKind(Enum):
    """Which storage algorithm a database instance runs."""

    SIASV = "sias-v"
    SI = "si"


@dataclass
class SpaceReport:
    """Per-table device-space breakdown (experiment T2)."""

    table: str
    data_bytes: int
    vidmap_bytes: int  # 0 for the SI baseline

    @property
    def total_bytes(self) -> int:
        """Data plus mapping footprint."""
        return self.data_bytes + self.vidmap_bytes


class Database:
    """One database instance bound to a storage algorithm and a device."""

    def __init__(self, kind: EngineKind, data_device: BlockDevice,
                 wal_device: BlockDevice,
                 config: SystemConfig | None = None) -> None:
        self.kind = kind
        self.config = config or SystemConfig()
        self.config.validate()
        self.clock: SimClock = data_device.clock
        self.data_device = data_device
        self.tablespace = Tablespace(data_device,
                                     extent_pages=self.config.extent_pages)
        self.buffer = BufferManager(self.tablespace,
                                    self.config.buffer.pool_pages)
        self.wal = WriteAheadLog(wal_device, self.config.buffer.page_size)
        self.txn_mgr = TransactionManager(wal=self.wal)
        self.bgwriter = BackgroundWriter(
            self.buffer, self.clock,
            self.config.buffer.bgwriter_interval_usec,
            self.config.buffer.bgwriter_batch_pages)
        self.checkpointer = Checkpointer(
            self.buffer, self.clock,
            self.config.buffer.checkpoint_interval_usec)
        # Checkpoint-anchored WAL truncation.  The pre-flush hook (first
        # in line, registered before any table's seal hook) snapshots the
        # redo anchor: the earliest record still needed once everything
        # the checkpoint flushes is durable.  The post hook appends a
        # CHECKPOINT record and truncates history + device behind the
        # anchor — recovery redo then starts at the last durable
        # checkpoint instead of the beginning of time, and neither the
        # log device nor the in-memory history grows without bound.
        self._ckpt_redo_index = 0
        self.checkpointer.subscribe(self._begin_wal_checkpoint)
        self.checkpointer.subscribe_post(self._complete_wal_checkpoint)
        self.tables: dict[str, Relation] = {}
        self._shut_down = False
        self._vidmap_file_ids: dict[str, int] = {}
        # DDL mutex: relation-id assignment and catalog insertion are
        # check-then-act over ``self.tables``
        self._schema_mu = threading.Lock()

    # -- constructors -------------------------------------------------------------

    @classmethod
    def on_flash(cls, kind: EngineKind, config: SystemConfig | None = None,
                 trace: TraceRecorder | None = None) -> "Database":
        """Database on a single simulated flash SSD (+ separate WAL SSD)."""
        config = config or SystemConfig()
        clock = SimClock()
        data = FlashDevice(clock, config.flash, trace=trace, name="data-ssd")
        wal = FlashDevice(clock, config.flash, name="wal-ssd")
        return cls(kind, data, wal, config)

    @classmethod
    def on_hdd(cls, kind: EngineKind, config: SystemConfig | None = None,
               trace: TraceRecorder | None = None) -> "Database":
        """Database on a single simulated spinning disk (+ WAL disk)."""
        config = config or SystemConfig()
        clock = SimClock()
        data = HddDevice(clock, config.hdd, trace=trace, name="data-hdd")
        wal = HddDevice(clock, config.hdd, name="wal-hdd")
        return cls(kind, data, wal, config)

    # -- schema -------------------------------------------------------------------------

    def create_table(self, name: str, schema: Schema,
                     indexes: list[IndexDef] | None = None) -> Relation:
        """Create a relation with its own storage file and indexes."""
        with self._schema_mu:
            if name in self.tables:
                raise SchemaError(f"table {name!r} already exists")
            relation_id = len(self.tables)
            file_id = self.tablespace.create_file(f"rel.{name}")
            engine: SiasVEngine | SiEngine
            if self.kind is EngineKind.SIASV:
                engine = SiasVEngine(relation_id, self.buffer, file_id,
                                     self.config.engine, self.txn_mgr)
                if self.config.engine.flush_threshold is FlushThreshold.T1:
                    self.bgwriter.subscribe(engine.store.seal_working_page)
                self.checkpointer.subscribe(engine.store.seal_working_page)
            else:
                engine = SiEngine(relation_id, self.buffer, file_id,
                                  self.config.engine, self.txn_mgr)
            relation = Relation(relation_id=relation_id, name=name,
                                schema=schema, codec=RowCodec(schema),
                                engine=engine)
            for definition in indexes or []:
                relation.add_index(definition)
            self.tables[name] = relation
            return relation

    def table(self, name: str) -> Relation:
        """Look up a relation by name."""
        try:
            return self.tables[name]
        except KeyError:
            raise SchemaError(f"unknown table {name!r}") from None

    # -- transactions ----------------------------------------------------------------------

    def begin(self, serializable: bool = False,
              at_ts: int | None = None) -> Transaction:
        """Start a transaction (snapshot isolation; SSI if requested).

        ``at_ts`` pins the snapshot to an externally supplied *closed*
        read timestamp — the cluster router's cluster-wide snapshot hook
        (see :meth:`repro.txn.manager.TransactionManager.begin`).
        """
        return self.txn_mgr.begin(serializable=serializable, at_ts=at_ts)

    def commit(self, txn: Transaction) -> None:
        """Commit (forces the WAL) and release per-txn resources."""
        self.txn_mgr.commit(txn)
        self._release_txn_pages(txn)

    def abort(self, txn: Transaction) -> None:
        """Roll back: undo actions run, locks release."""
        self.txn_mgr.abort(txn)
        self._release_txn_pages(txn)

    def prepare(self, txn: Transaction, gtxid: int) -> None:
        """2PC phase 1: durably prepare ``txn`` under global id ``gtxid``.

        Per-txn working pages are released here (the data records are
        already in the WAL, which the forced prepare covers), so a shard
        holds no page resources for an in-doubt transaction — only its
        locks and undo chain, released by the decision.
        """
        self.txn_mgr.prepare(txn, gtxid)
        self._release_txn_pages(txn)

    def commit_prepared(self, txid: int) -> bool:
        """2PC phase 2: apply a commit decision (idempotent)."""
        return self.txn_mgr.commit_prepared(txid)

    def abort_prepared(self, txid: int) -> bool:
        """2PC phase 2: apply an abort decision (idempotent)."""
        return self.txn_mgr.abort_prepared(txid)

    def closed_ts(self) -> int:
        """This engine's closed-timestamp watermark (see
        :meth:`repro.txn.manager.TransactionManager.closed_ts`)."""
        return self.txn_mgr.closed_ts()

    def advance_to(self, ts: int) -> int:
        """Ratchet the txid space to ``ts``; returns the new watermark."""
        return self.txn_mgr.advance_to(ts)

    def _release_txn_pages(self, txn: Transaction) -> None:
        if self.kind is not EngineKind.SIASV:
            return
        for relation in self.tables.values():
            relation.engine.on_txn_finished(txn.txid)

    def run_in_txn(self, fn: Callable[[Transaction], object],
                   serializable: bool = False) -> object:
        """Run ``fn`` in a transaction, committing on success.

        ``serializable=True`` runs under SSI instead of plain snapshot
        isolation (same passthrough as :meth:`begin`).
        """
        txn = self.begin(serializable=serializable)
        try:
            result = fn(txn)
            self.commit(txn)
        except BaseException:
            # commit itself can raise (an SSI commit-time doom); the
            # transaction must still release its locks and undo chain
            if txn.phase.value == "active":
                self.abort(txn)
            raise
        return result

    # -- data operations ----------------------------------------------------------------------

    def insert(self, txn: Transaction, table: str, row: tuple) -> ItemRef:
        """Insert a row; returns its item handle (VID or TID)."""
        relation = self.table(table)
        payload = relation.codec.encode(row)
        ref = relation.engine.insert(txn, payload)
        if txn.serializable:
            self.txn_mgr.ssi.on_write(txn, (relation.relation_id, ref))
        for definition, tree in relation.indexes.values():
            key = definition.key_of(relation.schema, row)
            tree.insert(key, ref)
            if self.kind is EngineKind.SIASV:
                # The VIDmap undo makes the VID unreachable; the index entry
                # must go with it or it would dangle forever.
                txn.register_undo(
                    lambda t=tree, k=key, r=ref: t.delete(k, r))
        return ref

    def bulk_insert(self, txn: Transaction, table: str,
                    rows: list[tuple]) -> list[ItemRef]:
        """Load many rows at once (page-wise VID blocks under SIAS-V)."""
        if not rows:
            return []
        relation = self.table(table)
        payloads = [relation.codec.encode(row) for row in rows]
        if self.kind is EngineKind.SIASV:
            refs: list[ItemRef] = list(
                relation.engine.bulk_insert(txn, payloads))
        else:
            refs = [relation.engine.insert(txn, payload)
                    for payload in payloads]
        for definition, tree in relation.indexes.values():
            for row, ref in zip(rows, refs):
                key = definition.key_of(relation.schema, row)
                tree.insert(key, ref)
                if self.kind is EngineKind.SIASV:
                    txn.register_undo(
                        lambda t=tree, k=key, r=ref: t.delete(k, r))
        return refs

    def scan_vid_range(self, txn: Transaction, table: str, lo: int,
                       hi: int) -> list[tuple[int, tuple]]:
        """Visible rows with ``lo <= VID < hi`` (SIAS-V only).

        VID-range queries fall out of the VIDmap's sequential bucket
        layout ("queries on VID ranges are also facilitated"); items whose
        visible version is a tombstone are skipped.
        """
        relation = self.table(table)
        if self.kind is not EngineKind.SIASV:
            raise SchemaError("VID-range scans need the SIAS-V engine")
        out: list[tuple[int, tuple]] = []
        for vid, _entry in relation.engine.vidmap.vid_range(lo, hi):
            payload = relation.engine.read(txn, vid)
            if payload is not None:
                out.append((vid, relation.codec.decode(payload)))
        return out

    def read(self, txn: Transaction, table: str,
             ref: ItemRef) -> tuple | None:
        """Visible row of an item handle (None if invisible or deleted)."""
        relation = self.table(table)
        payload = relation.engine.read(txn, ref)
        if payload is None:
            return None
        if txn.serializable:
            self.txn_mgr.ssi.on_read(txn, (relation.relation_id, ref))
        return relation.codec.decode(payload)

    def update(self, txn: Transaction, table: str, ref: ItemRef,
               row: tuple) -> ItemRef:
        """Replace an item's row; returns the (possibly new) handle.

        Under SIAS-V the handle (VID) is stable and only key-changing
        updates touch indexes.  Under SI every update yields a new TID and
        every index gains an entry for it.
        """
        relation = self.table(table)
        old_row = self.read(txn, table, ref)
        payload = relation.codec.encode(row)
        if txn.serializable:
            self.txn_mgr.ssi.on_write(txn, (relation.relation_id, ref))
        if self.kind is EngineKind.SIASV:
            relation.engine.update(txn, ref, payload)
            for definition, tree in relation.indexes.values():
                new_key = definition.key_of(relation.schema, row)
                old_key = (None if old_row is None
                           else definition.key_of(relation.schema, old_row))
                if old_key != new_key and not tree.contains(new_key, ref):
                    tree.insert(new_key, ref)
                    txn.register_undo(
                        lambda t=tree, k=new_key, r=ref: t.delete(k, r))
            return ref
        new_tid = relation.engine.update(txn, ref, payload)
        for definition, tree in relation.indexes.values():
            tree.insert(definition.key_of(relation.schema, row), new_tid)
        return new_tid

    def delete(self, txn: Transaction, table: str, ref: ItemRef) -> None:
        """Delete an item (tombstone under SIAS-V, xmax stamp under SI).

        Index entries stay until maintenance (GC / VACUUM) prunes them;
        lookups re-verify visibility so stale entries are harmless.
        """
        relation = self.table(table)
        if txn.serializable:
            self.txn_mgr.ssi.on_write(txn, (relation.relation_id, ref))
        relation.engine.delete(txn, ref)

    # -- index access -----------------------------------------------------------------------------

    def lookup(self, txn: Transaction, table: str, index_name: str,
               key) -> list[tuple[ItemRef, tuple]]:
        """Exact-match index lookup, visibility-checked and key-verified.

        Under the SI baseline, entries whose version is dead to every
        snapshot are removed on the way (PostgreSQL's LP_DEAD kill bits) —
        without this, hot keys accumulate one dead entry per update between
        VACUUMs and every lookup re-reads them all.
        """
        relation = self.table(table)
        definition, tree = relation.index(index_name)
        out: list[tuple[ItemRef, tuple]] = []
        refs = list(tree.search(key))
        if self.kind is EngineKind.SIASV and len(refs) > 1:
            # batched resolution: all candidates' chains descend with one
            # parallel device round-trip per chain level
            payloads = relation.engine.read_many(txn, refs)
            for ref, payload in zip(refs, payloads):
                if payload is None:
                    continue
                if txn.serializable:
                    self.txn_mgr.ssi.on_read(txn,
                                             (relation.relation_id, ref))
                row = relation.codec.decode(payload)
                if definition.key_of(relation.schema, row) != key:
                    continue  # stale entry: visible version has another key
                out.append((ref, row))
            return out
        kill: list[ItemRef] = []
        for ref in refs:
            row = self.read(txn, table, ref)
            if row is None:
                if (self.kind is EngineKind.SI
                        and relation.engine.is_dead_to_all(ref)):
                    kill.append(ref)
                continue
            if definition.key_of(relation.schema, row) != key:
                continue  # stale entry: the visible version has another key
            out.append((ref, row))
        for ref in kill:
            tree.delete(key, ref)
        return out

    def range_lookup(self, txn: Transaction, table: str, index_name: str,
                     lo, hi) -> list[tuple[ItemRef, tuple]]:
        """Range index lookup (inclusive bounds), visibility-checked."""
        relation = self.table(table)
        definition, tree = relation.index(index_name)
        out: list[tuple[ItemRef, tuple]] = []
        seen: set[object] = set()
        kill: list[tuple[object, ItemRef]] = []
        for found_key, ref in tree.range(lo, hi):
            if ref in seen:
                continue
            row = self.read(txn, table, ref)
            if row is None:
                if (self.kind is EngineKind.SI
                        and relation.engine.is_dead_to_all(ref)):
                    kill.append((found_key, ref))
                continue
            actual = definition.key_of(relation.schema, row)
            if actual != found_key:
                continue
            seen.add(ref)
            out.append((ref, row))
        for found_key, ref in kill:
            tree.delete(found_key, ref)
        return out

    def scan(self, txn: Transaction, table: str,
             columns: list[str] | None = None,
             where: tuple | None = None,
             ) -> Iterator[tuple[ItemRef, tuple]]:
        """Visible-rows scan (vectorized page kernels under SIAS-V).

        ``columns`` projects the yielded rows to the named columns;
        ``where`` is a ``(column, op, value)`` predicate with ``op`` one
        of ``== != < <= > >=``.  Under SIAS-V both are pushed into the
        VECTOR-page kernels, so filtered-out and invisible versions are
        never decoded; the SI baseline filters decoded rows.
        """
        relation = self.table(table)
        ssi = self.txn_mgr.ssi if txn.serializable else None
        if self.kind is EngineKind.SIASV:
            for vid, row in vec_scan(relation.engine, relation.codec, txn,
                                     columns=columns, where=where):
                if ssi is not None:
                    ssi.on_read(txn, (relation.relation_id, vid))
                yield vid, row
        else:
            matches = row_matcher(relation.codec, where)
            project = row_projection(relation.codec, columns)
            for tid, payload in relation.engine.scan(txn):
                row = relation.codec.decode(payload)
                if matches is not None and not matches(row):
                    continue
                if ssi is not None:
                    ssi.on_read(txn, (relation.relation_id, tid))
                yield tid, row if project is None else project(row)

    def scan_batch(self, txn: Transaction, table: str,
                   columns: list[str] | None = None,
                   where: tuple | None = None,
                   after: ItemRef | None = None, limit: int = 256,
                   ) -> tuple[list[tuple[ItemRef, tuple]], ItemRef | None]:
        """One cursored page of :meth:`scan`: ``(rows, next_cursor)``.

        Pass ``next_cursor`` back as ``after`` for the following page;
        None means the scan is exhausted.  Under SIAS-V the cursor is the
        last emitted VID and resumption seeks the VIDmap directly; the SI
        baseline uses a plain row offset into its deterministic scan
        order.  This is the unit the SCAN_BATCH wire command streams.
        """
        if limit <= 0:
            raise SchemaError(
                f"scan batch limit must be positive, got {limit}")
        relation = self.table(table)
        if self.kind is EngineKind.SIASV:
            ssi = self.txn_mgr.ssi if txn.serializable else None
            rows, cursor = vec_scan_batch(
                relation.engine, relation.codec, txn,
                columns=columns, where=where, after_vid=after, limit=limit)
            if ssi is not None:
                for vid, _row in rows:
                    ssi.on_read(txn, (relation.relation_id, vid))
            return rows, cursor
        start = 0 if after is None else int(after)  # type: ignore[arg-type]
        rows = list(itertools.islice(
            self.scan(txn, table, columns=columns, where=where),
            start, start + limit))
        return rows, (start + limit if len(rows) == limit else None)

    def aggregate(self, txn: Transaction, table: str, op: str,
                  column: str | None = None,
                  where: tuple | None = None) -> object:
        """``count``/``sum``/``min``/``max`` over the visible rows.

        Under SIAS-V this never materialises rows on VECTOR pages: a
        ``count`` touches only the metadata vectors and the other folds
        probe one fixed-width field per surviving version.
        """
        relation = self.table(table)
        if self.kind is EngineKind.SIASV:
            return vec_aggregate(relation.engine, relation.codec, txn,
                                 op, column=column, where=where)
        if op == "count":
            return sum(1 for _ in self.scan(txn, table, where=where))
        if op not in AGGREGATE_OPS:
            raise SchemaError(
                f"unknown aggregate {op!r} "
                f"(expected one of {AGGREGATE_OPS})")
        if column is None:
            raise SchemaError(f"aggregate {op!r} needs a column")
        values = (row[0] for _ref, row
                  in self.scan(txn, table, columns=[column], where=where))
        return fold_values(op, values)

    # -- background machinery ------------------------------------------------------------------------

    def _begin_wal_checkpoint(self) -> None:
        """Checkpoint pre-hook: pin the redo anchor before any flushing."""
        self._ckpt_redo_index = self.wal.begin_checkpoint(
            self.txn_mgr.active_txids)

    def _complete_wal_checkpoint(self) -> None:
        """Checkpoint post-hook: log CHECKPOINT, truncate behind the anchor."""
        self.wal.log_checkpoint(self._ckpt_redo_index)

    def tick(self) -> None:
        """Advance bgwriter/checkpointer to the current simulated time.

        The workload driver calls this between transactions.  Besides the
        timed checkpoints, a checkpoint also triggers when the WAL exceeds
        its size budget (PostgreSQL's ``max_wal_size``), which both bounds
        recovery work and recycles log segments.
        """
        self.bgwriter.maybe_run()
        self.checkpointer.maybe_run()
        if self.wal.device_bytes() >= self.config.buffer.max_wal_bytes:
            self.checkpointer.run_now()

    def maintenance(self) -> dict[str, object]:
        """Run GC (SIAS-V) or VACUUM (SI) on every table; prune indexes."""
        reports: dict[str, object] = {}
        for name, relation in self.tables.items():
            if self.kind is EngineKind.SIASV:
                report = GarbageCollector(relation.engine).collect()
                self._prune_after_gc(relation, report)
            else:
                report = Vacuum(relation.engine).run()
                self._prune_after_vacuum(relation, report)
            reports[name] = report
        return reports

    def _prune_after_gc(self, relation: Relation, report: GcReport) -> None:
        for outcome in report.items.values():
            for definition, tree in relation.indexes.values():
                live_keys = {
                    definition.key_of(relation.schema,
                                      relation.codec.decode(p))
                    for p in outcome.live_payloads}
                for payload in outcome.dead_payloads:
                    key = definition.key_of(relation.schema,
                                            relation.codec.decode(payload))
                    if key not in live_keys:
                        tree.delete(key, outcome.vid)

    def _prune_after_vacuum(self, relation: Relation,
                            report: VacuumReport) -> None:
        for tid, payload in report.killed:
            row = relation.codec.decode(payload)
            for definition, tree in relation.indexes.values():
                tree.delete(definition.key_of(relation.schema, row), tid)

    def shutdown(self) -> None:
        """Clean shutdown: seal working pages, checkpoint, persist VIDmaps.

        Idempotent: a repeated call is a no-op.  (Without the guard a
        second call would re-create duplicate ``vidmap.<table>`` tablespace
        files and re-run sealing against already-sealed stores.)
        """
        if self._shut_down:
            return
        if self.kind is EngineKind.SIASV:
            for relation in self.tables.values():
                relation.engine.store.seal_working_page()
        self.checkpointer.run_now()
        self.wal.force()
        if self.kind is EngineKind.SIASV:
            for relation in self.tables.values():
                file_id = self._vidmap_file_ids.get(relation.name)
                if file_id is None:
                    file_id = self.tablespace.create_file(
                        f"vidmap.{relation.name}")
                    self._vidmap_file_ids[relation.name] = file_id
                relation.engine.vidmap.persist(self.buffer, file_id)
        self._shut_down = True

    # -- reporting ---------------------------------------------------------------------------------------

    def space_reports(self) -> list[SpaceReport]:
        """Per-table device-space footprint."""
        out = []
        for name, relation in self.tables.items():
            if self.kind is EngineKind.SIASV:
                data = relation.engine.store.space_bytes()
                vidmap = relation.engine.vidmap.memory_bytes()
            else:
                data = relation.engine.heap.space_bytes()
                vidmap = 0
            out.append(SpaceReport(table=name, data_bytes=data,
                                   vidmap_bytes=vidmap))
        return out

    def total_space_bytes(self) -> int:
        """Whole-database data footprint."""
        return sum(r.total_bytes for r in self.space_reports())
