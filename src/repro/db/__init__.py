"""Relational facade: schemas, rows, catalog and the Database public API."""

from repro.db.catalog import IndexDef, IndexKind, Relation
from repro.db.database import Database, EngineKind, ItemRef, SpaceReport
from repro.db.monitor import SystemSnapshot, snapshot
from repro.db.recovery import RecoveryReport, crash, recover
from repro.db.row import RowCodec
from repro.db.schema import ColType, Column, Schema

__all__ = [
    "ColType",
    "Column",
    "Database",
    "EngineKind",
    "IndexDef",
    "IndexKind",
    "ItemRef",
    "RecoveryReport",
    "Relation",
    "RowCodec",
    "Schema",
    "SpaceReport",
    "SystemSnapshot",
    "crash",
    "recover",
    "snapshot",
]
