"""Catalog: relations, index definitions and key extraction."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.common.errors import SchemaError
from repro.db.row import RowCodec
from repro.db.schema import Schema
from repro.index.btree import BPlusTree
from repro.index.hashindex import ExtendibleHashIndex


class IndexKind(Enum):
    """Physical index structure backing an :class:`IndexDef`."""

    BTREE = "btree"
    HASH = "hash"


@dataclass(frozen=True)
class IndexDef:
    """Declaration of one index over a relation.

    ``columns`` is an ordered tuple of column names; single-column keys are
    stored as scalars, composite keys as tuples.  ``kind`` selects the
    physical structure — hash indexes serve equality lookups only, exactly
    like the paper's "hash based index structures can equally be adapted".
    """

    name: str
    columns: tuple[str, ...]
    unique: bool = False
    kind: IndexKind = IndexKind.BTREE

    def key_of(self, schema: Schema, row: tuple):
        """Extract this index's key from a row."""
        values = schema.project(row, list(self.columns))
        return values[0] if len(values) == 1 else values


@dataclass
class Relation:
    """One table: schema, codec, storage engine and indexes.

    The ``engine`` attribute holds either a
    :class:`~repro.core.engine.SiasVEngine` or a
    :class:`~repro.baseline.engine.SiEngine`; the database facade dispatches
    on which.  Index trees store ``⟨key, VID⟩`` under SIAS-V and
    ``⟨key, TID⟩`` under SI — same trees, different record identity.
    """

    relation_id: int
    name: str
    schema: Schema
    codec: RowCodec
    engine: object
    indexes: dict[str, tuple[IndexDef, BPlusTree]] = field(
        default_factory=dict)

    def add_index(self, definition: IndexDef, order: int = 64) -> None:
        """Register an index (must precede data loading)."""
        if definition.name in self.indexes:
            raise SchemaError(
                f"index {definition.name!r} already exists on {self.name}")
        for column in definition.columns:
            self.schema.position(column)  # validates the column names
        # Physical structures are always non-unique: under MVCC one logical
        # key legitimately maps to several version entries (SI) and
        # uniqueness is a logical property enforced through visibility.
        if definition.kind is IndexKind.HASH:
            tree: object = ExtendibleHashIndex()
        else:
            tree = BPlusTree(order=order)
        self.indexes[definition.name] = (definition, tree)

    def index(self, name: str) -> tuple[IndexDef, BPlusTree]:
        """Look up an index by name."""
        try:
            return self.indexes[name]
        except KeyError:
            raise SchemaError(
                f"relation {self.name} has no index {name!r}") from None
