"""System monitoring: one consolidated snapshot of a running database.

Collects, in a single call, everything the experiments and examples keep
reaching into subsystems for: device I/O counters (and FTL internals where
present), buffer effectiveness, WAL volume, transaction outcomes, per-table
engine statistics and space. ``render()`` pretty-prints the snapshot; the
raw dataclass is stable API for dashboards and tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baseline.engine import SiEngine
from repro.common import units
from repro.core.engine import SiasVEngine
from repro.db.database import Database
from repro.experiments.render import format_table
from repro.storage.flash import FlashDevice
from repro.storage.noftl import NoFtlFlashDevice


@dataclass(frozen=True)
class TableSnapshot:
    """Per-relation engine statistics."""

    name: str
    engine: str
    data_pages: int
    extra: dict[str, float] = field(default_factory=dict)


@dataclass(frozen=True)
class CommandStat:
    """One served command's latency/throughput counters.

    Populated when a snapshot is taken through the service layer
    (``snapshot(db, server=...)`` or the wire ``SNAPSHOT`` command);
    empty for purely in-process databases.
    """

    command: str
    calls: int
    ok: int
    errors: int
    shed: int
    mean_wall_usec: float
    max_wall_usec: float


@dataclass(frozen=True)
class SystemSnapshot:
    """One consistent reading of every subsystem's counters."""

    sim_time_sec: float
    device_reads: int
    device_writes: int
    device_read_mib: float
    device_write_mib: float
    device_erases: int
    write_amplification: float
    buffer_hit_ratio: float
    buffer_evictions: int
    buffer_writebacks: int
    wal_records: int
    wal_mib: float
    wal_forces: int
    txn_commits: int
    txn_aborts: int
    txn_active: int
    lock_conflicts: int
    tables: tuple[TableSnapshot, ...]
    commands: tuple[CommandStat, ...] = ()
    lock_waits: int = 0
    lock_wait_timeouts: int = 0
    #: service-layer resilience counters (zero for in-process databases):
    #: deadline sheds, drain casualties, and — when a client is passed to
    #: :func:`snapshot` — its breaker state and uncertain commits
    deadline_rejections: int = 0
    deadline_shed: int = 0
    drain_aborts: int = 0
    drain_refused: int = 0
    breaker_state: str = ""
    uncertain_commits: int = 0
    #: populated when the snapshot comes from a cluster router: per-shard
    #: transaction counters, 2PC outcome counters, in-doubt count and the
    #: router's fan-out latency counters (see ``docs/CLUSTER.md``)
    cluster: dict = field(default_factory=dict)
    #: populated when the node participates in WAL-shipping replication:
    #: role, epoch, durable/applied sequences, replica lag and watermark
    #: (see ``docs/REPLICATION.md``)
    replication: dict = field(default_factory=dict)

    def render(self) -> str:
        """Pretty-print the snapshot."""
        head = format_table(
            f"system snapshot @ {self.sim_time_sec:.2f} sim-s",
            ["metric", "value"],
            [
                ["device reads / writes",
                 f"{self.device_reads} / {self.device_writes}"],
                ["device read / write MiB",
                 f"{self.device_read_mib:.1f} / {self.device_write_mib:.1f}"],
                ["device erases", self.device_erases],
                ["write amplification", round(self.write_amplification, 3)],
                ["buffer hit ratio", round(self.buffer_hit_ratio, 4)],
                ["buffer evictions / writebacks",
                 f"{self.buffer_evictions} / {self.buffer_writebacks}"],
                ["WAL records / MiB / forces",
                 f"{self.wal_records} / {self.wal_mib:.1f} / "
                 f"{self.wal_forces}"],
                ["txn commits / aborts / active",
                 f"{self.txn_commits} / {self.txn_aborts} / "
                 f"{self.txn_active}"],
                ["lock conflicts / waits / wait timeouts",
                 f"{self.lock_conflicts} / {self.lock_waits} / "
                 f"{self.lock_wait_timeouts}"],
                ["deadline rejected / shed (service)",
                 f"{self.deadline_rejections} / {self.deadline_shed}"],
                ["drain aborts / refused (service)",
                 f"{self.drain_aborts} / {self.drain_refused}"],
                ["client breaker / uncertain commits",
                 f"{self.breaker_state or 'n/a'} / "
                 f"{self.uncertain_commits}"],
            ])
        rows = []
        for table in self.tables:
            extras = ", ".join(f"{k}={v:g}" for k, v in table.extra.items())
            rows.append([table.name, table.engine, table.data_pages,
                         extras])
        out = head + format_table(
            "per-table", ["table", "engine", "pages", "stats"], rows)
        if self.commands:
            out += format_table(
                "per-command (service layer)",
                ["command", "calls", "ok", "errors", "shed",
                 "mean us", "max us"],
                [[c.command, c.calls, c.ok, c.errors, c.shed,
                  c.mean_wall_usec, c.max_wall_usec]
                 for c in self.commands])
        if self.cluster:
            shard_rows = []
            for shard in self.cluster.get("shards", ()):
                txns = shard.get("txns", {})
                lag = shard.get("snapshot_lag")
                shard_rows.append([
                    shard.get("shard", "?"),
                    f"{shard.get('host', '?')}:{shard.get('port', '?')}",
                    "up" if shard.get("alive") else "DOWN",
                    f"{txns.get('commits', 0)} / {txns.get('aborts', 0)}",
                    f"{txns.get('prepares', 0)} / "
                    f"{txns.get('prepared_commits', 0)} / "
                    f"{txns.get('prepared_aborts', 0)}",
                    txns.get("in_doubt", 0),
                    shard.get("closed_ts", "-") if shard.get("alive")
                    else "-",
                    txns.get("begin_at", "-") if shard.get("alive")
                    else "-",
                    "-" if lag is None else f"+{lag}",
                ])
            out += format_table(
                "cluster shards",
                ["shard", "address", "state", "commits/aborts",
                 "prep/p-commit/p-abort", "in-doubt",
                 "closed-ts", "begin@ts", "snap-lag"],
                shard_rows)
            snapshot_rows = [
                [key, self.cluster.get(key)]
                for key in ("snapshot_ts", "commit_floor",
                            "straddle_windows", "in_doubt_1pc",
                            "pending_decisions", "per_shard_snapshots")
                if key in self.cluster]
            if snapshot_rows:
                out += format_table(
                    "cluster-wide snapshot",
                    ["metric", "value"],
                    snapshot_rows)
            router = self.cluster.get("router", {})
            if router:
                out += format_table(
                    "cluster router (2PC)",
                    ["metric", "value"],
                    [[k, v] for k, v in sorted(router.items())
                     if not isinstance(v, dict)])
        if self.replication:
            out += format_table(
                "replication",
                ["metric", "value"],
                [[key, value] for key, value
                 in sorted(self.replication.items())
                 if not isinstance(value, dict)]
                + [[f"slot[{fid}]", seq] for fid, seq
                   in sorted(self.replication.get("slots", {}).items())])
        return out


def snapshot(db: Database, server: object | None = None,
             client: object | None = None) -> SystemSnapshot:
    """Collect a :class:`SystemSnapshot` from a live database.

    ``server`` (anything with a ``command_stats()`` returning a tuple of
    :class:`CommandStat`, e.g. :class:`repro.server.DatabaseServer`) adds
    the service layer's per-command counters and resilience counters to
    the snapshot.  ``client`` (anything with a ``pool`` carrying a
    ``breaker`` and ``stats``, e.g. :class:`repro.client.RemoteDatabase`)
    adds the client-side view: circuit-breaker state and commits whose
    acknowledgement was lost.
    """
    device = db.data_device
    erases = 0
    amp = 1.0
    if isinstance(device, FlashDevice):
        erases = device.ftl.stats.erases
        amp = device.ftl.stats.write_amplification
    elif isinstance(device, NoFtlFlashDevice):
        erases = device.erases
        amp = device.write_amplification
    tables = []
    for name, relation in db.tables.items():
        engine = relation.engine
        if isinstance(engine, SiasVEngine):
            tables.append(TableSnapshot(
                name=name, engine="sias-v",
                data_pages=engine.store.device_pages(),
                extra={
                    "appended": engine.store.stats.appended_records,
                    "sealed": engine.store.stats.sealed_pages,
                    "reclaimed": engine.store.stats.reclaimed_pages,
                    "avg_fill": round(engine.store.stats.avg_fill_degree,
                                      3),
                    "chain_hops": engine.stats.chain_hops,
                    "vidmap_items": engine.vidmap.item_count(),
                }))
        elif isinstance(engine, SiEngine):
            tables.append(TableSnapshot(
                name=name, engine="si",
                data_pages=engine.heap.page_count,
                extra={
                    "inserts": engine.heap.stats.tuple_inserts,
                    "xmax_stamps":
                        engine.heap.stats.in_place_invalidations,
                    "killed": engine.heap.stats.killed_tuples,
                }))
    # one reading under the txn mutex: commits + aborts + active always
    # add up even while worker threads finish transactions mid-snapshot
    commits, aborts, active = db.txn_mgr.counters()
    return SystemSnapshot(
        sim_time_sec=db.clock.now_sec,
        device_reads=device.stats.reads,
        device_writes=device.stats.writes,
        device_read_mib=units.mib(device.stats.read_bytes),
        device_write_mib=units.mib(device.stats.write_bytes),
        device_erases=erases,
        write_amplification=amp,
        buffer_hit_ratio=db.buffer.stats.hit_ratio,
        buffer_evictions=db.buffer.stats.evictions,
        buffer_writebacks=db.buffer.stats.writebacks,
        wal_records=db.wal.records_written,
        wal_mib=units.mib(db.wal.bytes_written),
        wal_forces=db.wal.forces,
        txn_commits=commits,
        txn_aborts=aborts,
        txn_active=active,
        lock_conflicts=db.txn_mgr.locks.stats.conflicts,
        lock_waits=db.txn_mgr.locks.stats.waits,
        lock_wait_timeouts=db.txn_mgr.locks.stats.wait_timeouts,
        tables=tuple(tables),
        commands=(server.command_stats()  # type: ignore[attr-defined]
                  if server is not None else ()),
        deadline_rejections=(
            server.dispatch.stats.deadline_rejected  # type: ignore[attr-defined]
            if server is not None else 0),
        deadline_shed=(
            server.dispatch.stats.deadline_shed  # type: ignore[attr-defined]
            if server is not None else 0),
        drain_aborts=(
            server.sessions.stats.drain_aborts  # type: ignore[attr-defined]
            if server is not None else 0),
        drain_refused=(
            server.sessions.stats.drain_refused  # type: ignore[attr-defined]
            if server is not None else 0),
        breaker_state=(
            client.pool.breaker.state.value  # type: ignore[attr-defined]
            if client is not None else ""),
        uncertain_commits=(
            client.pool.stats.uncertain_commits  # type: ignore[attr-defined]
            if client is not None else 0),
        replication=(
            server.replication.status()  # type: ignore[attr-defined]
            if getattr(server, "replication", None) is not None else {}),
    )
