"""Run metrics: NOTPM, response times, abort accounting.

The paper reports throughput in **NOTPM** (NewOrder transactions per
minute) and response time in seconds — both over *simulated* time here.
Response-time percentiles come from the recorded per-transaction spans.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.common import units
from repro.workload.mixes import TxnType


@dataclass
class TxnOutcome:
    """One finished transaction attempt."""

    type: TxnType
    committed: bool
    response_usec: int
    spec_rollback: bool = False
    serialization_abort: bool = False


def percentile(values: list[int], q: float) -> int:
    """Nearest-rank percentile (0 for empty input)."""
    if not values:
        return 0
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"percentile q out of [0,1]: {q}")
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[rank]


@dataclass
class Metrics:
    """Accumulates outcomes over one run."""

    outcomes: list[TxnOutcome] = field(default_factory=list)
    finish_times_usec: list[int] = field(default_factory=list)
    start_usec: int = 0
    end_usec: int = 0
    # record() is called from every client thread; the lock keeps the two
    # parallel lists the same length so aggregate views zip them safely
    _mu: threading.Lock = field(default_factory=threading.Lock,
                                repr=False, compare=False)

    def record(self, outcome: TxnOutcome,
               finished_at_usec: int | None = None) -> None:
        """Add one finished attempt (with its completion time if known)."""
        with self._mu:
            self.outcomes.append(outcome)
            self.finish_times_usec.append(
                self.end_usec if finished_at_usec is None
                else finished_at_usec)

    def timeline(self, bucket_usec: int = units.SEC,
                 type_: TxnType | None = TxnType.NEW_ORDER,
                 ) -> list[tuple[float, int]]:
        """Commits per time bucket: ``[(bucket_start_sec, commits), ...]``.

        The per-second throughput series behind "tolerable load" analyses:
        a saturated system shows the series flattening or collapsing.
        """
        if bucket_usec <= 0:
            raise ValueError(f"bucket must be positive, got {bucket_usec}")
        buckets: dict[int, int] = {}
        for outcome, finished in zip(self.outcomes, self.finish_times_usec):
            if not outcome.committed:
                continue
            if type_ is not None and outcome.type is not type_:
                continue
            buckets[finished // bucket_usec] = \
                buckets.get(finished // bucket_usec, 0) + 1
        return [(bucket * bucket_usec / units.SEC, count)
                for bucket, count in sorted(buckets.items())]

    # -- aggregate views --------------------------------------------------------

    def commits(self, type_: TxnType | None = None) -> int:
        """Committed attempts (optionally of one type)."""
        return sum(1 for o in self.outcomes if o.committed
                   and (type_ is None or o.type is type_))

    def aborts(self) -> int:
        """All aborted attempts (spec rollbacks + serialization losses)."""
        return sum(1 for o in self.outcomes if not o.committed)

    def serialization_aborts(self) -> int:
        """First-updater-wins losers."""
        return sum(1 for o in self.outcomes if o.serialization_abort)

    @property
    def span_usec(self) -> int:
        """Measured simulated interval."""
        return max(0, self.end_usec - self.start_usec)

    def notpm(self) -> float:
        """NewOrder commits per simulated minute (the headline metric)."""
        if self.span_usec == 0:
            return 0.0
        minutes = self.span_usec / units.MINUTE
        return self.commits(TxnType.NEW_ORDER) / minutes

    def response_times_usec(self, type_: TxnType | None = None,
                            committed_only: bool = True) -> list[int]:
        """Raw response-time samples."""
        return [o.response_usec for o in self.outcomes
                if (type_ is None or o.type is type_)
                and (o.committed or not committed_only)]

    def response_sec(self, q: float = 0.90,
                     type_: TxnType | None = TxnType.NEW_ORDER) -> float:
        """Response-time percentile in seconds (paper reports seconds)."""
        return units.sec_from_usec(
            percentile(self.response_times_usec(type_), q))

    def mean_response_sec(self,
                          type_: TxnType | None = TxnType.NEW_ORDER) -> float:
        """Mean response time in seconds."""
        samples = self.response_times_usec(type_)
        if not samples:
            return 0.0
        return units.sec_from_usec(sum(samples) / len(samples))

    def summary(self) -> "RunSummary":
        """Freeze into a compact summary record."""
        return RunSummary(
            notpm=self.notpm(),
            commits=self.commits(),
            aborts=self.aborts(),
            serialization_aborts=self.serialization_aborts(),
            mean_response_sec=self.mean_response_sec(),
            p90_response_sec=self.response_sec(0.90),
            span_sec=units.sec_from_usec(self.span_usec),
        )


@dataclass(frozen=True)
class RunSummary:
    """Headline numbers of one workload run."""

    notpm: float
    commits: int
    aborts: int
    serialization_aborts: int
    mean_response_sec: float
    p90_response_sec: float
    span_sec: float
