"""The five TPC-C transaction profiles, written as interleavable generators.

Each profile is a generator that performs its reads and writes through the
:class:`~repro.db.database.Database` API and ``yield``s between logical
steps.  The driver advances several transactions round-robin, so snapshots
genuinely overlap and first-updater-wins conflicts genuinely happen (two
in-flight NewOrders incrementing the same district's ``d_next_o_id``, two
Deliveries draining the same district queue, ...).

Spec-faithful behaviours kept: the NewOrder 1 %-invalid-item rollback,
NURand customer/item selection, payment-by-last-name (60 %) with the
middle-row rule, remote payments (15 %), and the delivery carrier sweep
over every district.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Generator

from repro.common.errors import WorkloadError
from repro.common.rng import NURand
from repro.db.database import Database, ItemRef
from repro.txn.manager import Transaction
from repro.workload import tpcc_schema as ts
from repro.workload.tpcc_schema import TpccScale


class SpecRollback(WorkloadError):
    """TPC-C's intentional NewOrder rollback (unused item number)."""


@dataclass
class TpccContext:
    """Shared state of one workload run."""

    db: Database
    scale: TpccScale
    warehouses: int
    rng: random.Random
    nurand: NURand

    def pk(self, txn: Transaction, table: str, key) -> tuple[ItemRef, tuple]:
        """Primary-key point lookup that must succeed."""
        hits = self.db.lookup(txn, table, "pk", key)
        if not hits:
            raise WorkloadError(f"{table} pk {key!r} not found")
        return hits[0]

    def random_wd(self) -> tuple[int, int]:
        """Uniform warehouse + district pair."""
        return (self.rng.randint(1, self.warehouses),
                self.rng.randint(1, self.scale.districts_per_warehouse))

    def nurand_customer(self) -> int:
        """Clause 2.1.6 customer id (scaled into range)."""
        c = self.nurand(1023, 1, 1023)
        return 1 + (c - 1) % self.scale.customers_per_district

    def nurand_item(self) -> int:
        """Clause 2.1.6 item id (scaled into range)."""
        i = self.nurand(8191, 1, 8191)
        return 1 + (i - 1) % self.scale.items


TxnGen = Generator[None, None, None]


# ---------------------------------------------------------------------------
# NewOrder (the throughput metric: NOTPM counts these)
# ---------------------------------------------------------------------------

def new_order(ctx: TpccContext, txn: Transaction) -> TxnGen:
    """Clause 2.4: order entry with 5–15 stock-updating lines."""
    db, rng = ctx.db, ctx.rng
    w_id, d_id = ctx.random_wd()
    c_id = ctx.nurand_customer()
    _wref, warehouse = ctx.pk(txn, ts.WAREHOUSE, w_id)
    dref, district = ctx.pk(txn, ts.DISTRICT, (w_id, d_id))
    _cref, _customer = ctx.pk(txn, ts.CUSTOMER, (w_id, d_id, c_id))
    yield

    o_id = district[9]
    district = district[:9] + (o_id + 1,)
    db.update(txn, ts.DISTRICT, dref, district)
    ol_cnt = rng.randint(ctx.scale.min_order_lines,
                         ctx.scale.max_order_lines)
    db.insert(txn, ts.ORDERS, (w_id, d_id, o_id, c_id, 0, 0, ol_cnt, 1))
    db.insert(txn, ts.NEW_ORDER, (w_id, d_id, o_id))
    yield

    rollback_line = (rng.randint(1, ol_cnt)
                     if rng.random() < 0.01 else 0)
    for number in range(1, ol_cnt + 1):
        if number == rollback_line:
            raise SpecRollback("unused item number (clause 2.4.1.4)")
        i_id = ctx.nurand_item()
        _iref, item = ctx.pk(txn, ts.ITEM, i_id)
        supply_w = w_id
        if ctx.warehouses > 1 and rng.random() < 0.01:
            supply_w = rng.choice(
                [w for w in range(1, ctx.warehouses + 1) if w != w_id])
        sref, stock = ctx.pk(txn, ts.STOCK, (supply_w, i_id))
        quantity = rng.randint(1, 10)
        s_quantity = stock[2] - quantity
        if s_quantity < 10:
            s_quantity += 91
        stock = (stock[0], stock[1], s_quantity, stock[3],
                 stock[4] + quantity, stock[5] + 1,
                 stock[6] + (0 if supply_w == w_id else 1), stock[7])
        db.update(txn, ts.STOCK, sref, stock)
        amount = round(quantity * item[3], 2)
        db.insert(txn, ts.ORDER_LINE, (
            w_id, d_id, o_id, number, i_id, supply_w, 0, quantity,
            amount, stock[3]))
        yield


# ---------------------------------------------------------------------------
# Payment
# ---------------------------------------------------------------------------

def _customer_by_last_name(ctx: TpccContext, txn: Transaction, w_id: int,
                           d_id: int) -> tuple[ItemRef, tuple] | None:
    """Clause 2.5.2.2: middle row (rounded up) of the last-name matches."""
    from repro.workload.tpcc_data import last_name
    name = last_name(ctx.nurand(255, 0, 999))
    hits = ctx.db.lookup(txn, ts.CUSTOMER, "by_last", (w_id, d_id, name))
    if not hits:
        return None
    hits.sort(key=lambda pair: pair[1][3])  # order by c_first
    return hits[(len(hits) - 1) // 2 + (len(hits) - 1) % 2]


def payment(ctx: TpccContext, txn: Transaction) -> TxnGen:
    """Clause 2.5: warehouse/district YTD and customer balance update."""
    db, rng = ctx.db, ctx.rng
    w_id, d_id = ctx.random_wd()
    amount = round(rng.uniform(1.0, 5000.0), 2)
    wref, warehouse = ctx.pk(txn, ts.WAREHOUSE, w_id)
    db.update(txn, ts.WAREHOUSE, wref,
              warehouse[:7] + (warehouse[7] + amount,))
    yield

    dref, district = ctx.pk(txn, ts.DISTRICT, (w_id, d_id))
    db.update(txn, ts.DISTRICT, dref,
              district[:8] + (district[8] + amount,) + district[9:])
    yield

    c_w, c_d = w_id, d_id
    if ctx.warehouses > 1 and rng.random() < 0.15:  # remote customer
        c_w = rng.choice(
            [w for w in range(1, ctx.warehouses + 1) if w != w_id])
        c_d = rng.randint(1, ctx.scale.districts_per_warehouse)
    found = None
    if rng.random() < 0.60:
        found = _customer_by_last_name(ctx, txn, c_w, c_d)
    if found is None:
        found = ctx.pk(txn, ts.CUSTOMER,
                       (c_w, c_d, ctx.nurand_customer()))
    cref, customer = found
    c_data = customer[19]
    if customer[12] == "BC":  # bad credit: prepend payment info
        c_data = (f"{customer[2]} {c_d} {c_w} {d_id} {w_id} {amount};"
                  + c_data)[:120]
    customer = (customer[:15]
                + (customer[15] - amount, customer[16] + amount,
                   customer[17] + 1, customer[18], c_data))
    db.update(txn, ts.CUSTOMER, cref, customer)
    yield

    db.insert(txn, ts.HISTORY,
              (customer[2], c_d, c_w, d_id, w_id, 0, amount, "payment"))


# ---------------------------------------------------------------------------
# Order-Status (read only)
# ---------------------------------------------------------------------------

def order_status(ctx: TpccContext, txn: Transaction) -> TxnGen:
    """Clause 2.6: a customer's most recent order and its lines."""
    db, rng = ctx.db, ctx.rng
    w_id, d_id = ctx.random_wd()
    found = None
    if rng.random() < 0.60:
        found = _customer_by_last_name(ctx, txn, w_id, d_id)
    if found is None:
        found = ctx.pk(txn, ts.CUSTOMER, (w_id, d_id, ctx.nurand_customer()))
    _cref, customer = found
    yield

    orders = db.lookup(txn, ts.ORDERS, "by_customer",
                       (w_id, d_id, customer[2]))
    if not orders:
        return
    _oref, order = max(orders, key=lambda pair: pair[1][2])
    yield

    db.range_lookup(txn, ts.ORDER_LINE, "pk",
                    (w_id, d_id, order[2], 0),
                    (w_id, d_id, order[2], 10_000))


# ---------------------------------------------------------------------------
# Delivery
# ---------------------------------------------------------------------------

def delivery(ctx: TpccContext, txn: Transaction) -> TxnGen:
    """Clause 2.7: drain the oldest new-order of every district."""
    db, rng = ctx.db, ctx.rng
    w_id = rng.randint(1, ctx.warehouses)
    carrier = rng.randint(1, 10)
    for d_id in range(1, ctx.scale.districts_per_warehouse + 1):
        queue = db.range_lookup(txn, ts.NEW_ORDER, "pk",
                                (w_id, d_id, 0),
                                (w_id, d_id, 1 << 30))
        if not queue:
            continue
        no_ref, no_row = min(queue, key=lambda pair: pair[1][2])
        o_id = no_row[2]
        db.delete(txn, ts.NEW_ORDER, no_ref)
        oref, order = ctx.pk(txn, ts.ORDERS, (w_id, d_id, o_id))
        db.update(txn, ts.ORDERS, oref,
                  order[:5] + (carrier,) + order[6:])
        lines = db.range_lookup(txn, ts.ORDER_LINE, "pk",
                                (w_id, d_id, o_id, 0),
                                (w_id, d_id, o_id, 10_000))
        total = 0.0
        for lref, line in lines:
            total += line[8]
            db.update(txn, ts.ORDER_LINE, lref,
                      line[:6] + (1,) + line[7:])
        cref, customer = ctx.pk(txn, ts.CUSTOMER, (w_id, d_id, order[3]))
        db.update(txn, ts.CUSTOMER, cref,
                  customer[:15] + (customer[15] + total,)
                  + customer[16:18] + (customer[18] + 1, customer[19]))
        yield


# ---------------------------------------------------------------------------
# Stock-Level (read only)
# ---------------------------------------------------------------------------

def stock_level(ctx: TpccContext, txn: Transaction) -> TxnGen:
    """Clause 2.8: count recent low-stock items of one district."""
    db, rng = ctx.db, ctx.rng
    w_id, d_id = ctx.random_wd()
    threshold = rng.randint(10, 20)
    _dref, district = ctx.pk(txn, ts.DISTRICT, (w_id, d_id))
    next_o_id = district[9]
    yield

    lines = db.range_lookup(txn, ts.ORDER_LINE, "pk",
                            (w_id, d_id, max(1, next_o_id - 20), 0),
                            (w_id, d_id, next_o_id, 10_000))
    item_ids = {line[4] for _ref, line in lines}
    yield

    low = 0
    for i_id in sorted(item_ids):
        hits = db.lookup(txn, ts.STOCK, "pk", (w_id, i_id))
        if hits and hits[0][1][2] < threshold:
            low += 1
