"""TPC-C-style schema (DBT2 substitute).

All nine TPC-C relations with their standard columns (string paddings are
shortened but keep realistic relative row sizes) and the index set DBT2
uses: primary keys everywhere, the customer-by-last-name path, and the
order/new-order navigation indexes.

Scaling is intentionally configurable and defaults far below the spec
(3000 customers per district would be pointless in a pure-Python simulator):
:class:`TpccScale` preserves the *ratios* that matter to the experiments —
stock dominates the footprint, order lines dominate growth, and the working
set grows linearly with warehouses so buffer pressure arrives on schedule.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.db.catalog import IndexDef
from repro.db.schema import ColType, Schema


@dataclass(frozen=True)
class TpccScale:
    """Scaled-down TPC-C cardinalities (per warehouse unless noted)."""

    districts_per_warehouse: int = 10
    customers_per_district: int = 30
    items: int = 200                  # global, shared across warehouses
    stock_per_warehouse: int = 200    # one stock row per item
    initial_orders_per_district: int = 10
    max_order_lines: int = 15
    min_order_lines: int = 5

    def validate(self) -> None:
        """Raise ValueError for inconsistent scales."""
        if self.stock_per_warehouse != self.items:
            raise ValueError("stock rows per warehouse must equal items")
        if not 1 <= self.min_order_lines <= self.max_order_lines:
            raise ValueError("bad order-line bounds")
        if min(self.districts_per_warehouse, self.customers_per_district,
               self.items, self.initial_orders_per_district) < 1:
            raise ValueError("all cardinalities must be >= 1")


#: Table name constants (single source of truth for the workload code).
WAREHOUSE = "warehouse"
DISTRICT = "district"
CUSTOMER = "customer"
HISTORY = "history"
NEW_ORDER = "new_order"
ORDERS = "orders"
ORDER_LINE = "order_line"
ITEM = "item"
STOCK = "stock"

SCHEMAS: dict[str, Schema] = {
    WAREHOUSE: Schema.of(
        ("w_id", ColType.INT), ("w_name", ColType.STR),
        ("w_street", ColType.STR), ("w_city", ColType.STR),
        ("w_state", ColType.STR), ("w_zip", ColType.STR),
        ("w_tax", ColType.FLOAT), ("w_ytd", ColType.FLOAT)),
    DISTRICT: Schema.of(
        ("d_w_id", ColType.INT), ("d_id", ColType.INT),
        ("d_name", ColType.STR), ("d_street", ColType.STR),
        ("d_city", ColType.STR), ("d_state", ColType.STR),
        ("d_zip", ColType.STR), ("d_tax", ColType.FLOAT),
        ("d_ytd", ColType.FLOAT), ("d_next_o_id", ColType.INT)),
    CUSTOMER: Schema.of(
        ("c_w_id", ColType.INT), ("c_d_id", ColType.INT),
        ("c_id", ColType.INT), ("c_first", ColType.STR),
        ("c_middle", ColType.STR), ("c_last", ColType.STR),
        ("c_street", ColType.STR), ("c_city", ColType.STR),
        ("c_state", ColType.STR), ("c_zip", ColType.STR),
        ("c_phone", ColType.STR), ("c_since", ColType.INT),
        ("c_credit", ColType.STR), ("c_credit_lim", ColType.FLOAT),
        ("c_discount", ColType.FLOAT), ("c_balance", ColType.FLOAT),
        ("c_ytd_payment", ColType.FLOAT), ("c_payment_cnt", ColType.INT),
        ("c_delivery_cnt", ColType.INT), ("c_data", ColType.STR)),
    HISTORY: Schema.of(
        ("h_c_id", ColType.INT), ("h_c_d_id", ColType.INT),
        ("h_c_w_id", ColType.INT), ("h_d_id", ColType.INT),
        ("h_w_id", ColType.INT), ("h_date", ColType.INT),
        ("h_amount", ColType.FLOAT), ("h_data", ColType.STR)),
    NEW_ORDER: Schema.of(
        ("no_w_id", ColType.INT), ("no_d_id", ColType.INT),
        ("no_o_id", ColType.INT)),
    ORDERS: Schema.of(
        ("o_w_id", ColType.INT), ("o_d_id", ColType.INT),
        ("o_id", ColType.INT), ("o_c_id", ColType.INT),
        ("o_entry_d", ColType.INT), ("o_carrier_id", ColType.INT),
        ("o_ol_cnt", ColType.INT), ("o_all_local", ColType.INT)),
    ORDER_LINE: Schema.of(
        ("ol_w_id", ColType.INT), ("ol_d_id", ColType.INT),
        ("ol_o_id", ColType.INT), ("ol_number", ColType.INT),
        ("ol_i_id", ColType.INT), ("ol_supply_w_id", ColType.INT),
        ("ol_delivery_d", ColType.INT), ("ol_quantity", ColType.INT),
        ("ol_amount", ColType.FLOAT), ("ol_dist_info", ColType.STR)),
    ITEM: Schema.of(
        ("i_id", ColType.INT), ("i_im_id", ColType.INT),
        ("i_name", ColType.STR), ("i_price", ColType.FLOAT),
        ("i_data", ColType.STR)),
    STOCK: Schema.of(
        ("s_w_id", ColType.INT), ("s_i_id", ColType.INT),
        ("s_quantity", ColType.INT), ("s_dist_info", ColType.STR),
        ("s_ytd", ColType.FLOAT), ("s_order_cnt", ColType.INT),
        ("s_remote_cnt", ColType.INT), ("s_data", ColType.STR)),
}

INDEXES: dict[str, list[IndexDef]] = {
    WAREHOUSE: [IndexDef("pk", ("w_id",), unique=True)],
    DISTRICT: [IndexDef("pk", ("d_w_id", "d_id"), unique=True)],
    CUSTOMER: [
        IndexDef("pk", ("c_w_id", "c_d_id", "c_id"), unique=True),
        IndexDef("by_last", ("c_w_id", "c_d_id", "c_last")),
    ],
    HISTORY: [],
    NEW_ORDER: [IndexDef("pk", ("no_w_id", "no_d_id", "no_o_id"),
                         unique=True)],
    ORDERS: [
        IndexDef("pk", ("o_w_id", "o_d_id", "o_id"), unique=True),
        IndexDef("by_customer", ("o_w_id", "o_d_id", "o_c_id")),
    ],
    ORDER_LINE: [IndexDef("pk", ("ol_w_id", "ol_d_id", "ol_o_id",
                                 "ol_number"), unique=True)],
    ITEM: [IndexDef("pk", ("i_id",), unique=True)],
    STOCK: [IndexDef("pk", ("s_w_id", "s_i_id"), unique=True)],
}

ALL_TABLES = list(SCHEMAS.keys())


def create_tpcc_tables(db) -> None:
    """Create all nine relations with their indexes on a Database."""
    for name in ALL_TABLES:
        db.create_table(name, SCHEMAS[name], indexes=INDEXES[name])
