"""Closed-loop multi-client workload driver over simulated time.

``clients`` transactions are in flight at once; the driver advances them
round-robin one *step* (the generators' yield granularity) at a time, so
their snapshots overlap and write-write conflicts occur exactly as they
would under real concurrency.  Every step charges a fixed CPU cost to the
simulated clock on top of whatever device time the step's I/O consumed;
committed NewOrders per simulated minute is the NOTPM the experiments
report.

Failure handling mirrors DBT2: a serialization abort (first-updater-wins
loser) is recorded and the client immediately starts a fresh transaction;
the TPC-C 1 %-invalid-item rollback is recorded as a (successful-looking)
rollback, not an error.  Periodic maintenance (GC / VACUUM) runs on a
simulated-time interval, like autovacuum.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common import units
from repro.common.errors import SerializationError
from repro.common.rng import NURand, make_rng
from repro.db.database import Database
from repro.txn.manager import Transaction
from repro.workload.metrics import Metrics, TxnOutcome
from repro.workload.mixes import PROFILES, STANDARD_MIX, TxnType, validate_mix
from repro.workload.tpcc_schema import TpccScale
from repro.workload.tpcc_txns import SpecRollback, TpccContext


@dataclass
class DriverConfig:
    """Driver knobs.

    ``think_time_usec`` inserts a pause between a client's transactions
    (DBT2's keying/think time).  With think time large relative to service
    time the offered load becomes rate-limited instead of capacity-limited —
    the control the write-volume experiments need so both engines process
    the same work over the same window.
    """

    clients: int = 8
    cpu_per_step_usec: int = 50
    think_time_usec: int = 0
    maintenance_interval_usec: int = 60 * units.SEC
    mix: dict[TxnType, float] = field(
        default_factory=lambda: dict(STANDARD_MIX))

    def validate(self) -> None:
        """Raise on inconsistent settings."""
        if self.clients < 1:
            raise ValueError("need at least one client")
        if self.cpu_per_step_usec < 0:
            raise ValueError("negative CPU cost")
        if self.think_time_usec < 0:
            raise ValueError("negative think time")
        validate_mix(self.mix)


@dataclass
class _ClientSlot:
    """One in-flight transaction of one simulated client."""

    generator: object
    txn: Transaction
    type: TxnType
    start_usec: int


class TpccDriver:
    """Runs the TPC-C-style mix against one database."""

    def __init__(self, db: Database, warehouses: int,
                 scale: TpccScale | None = None,
                 config: DriverConfig | None = None,
                 seed: int = 42) -> None:
        self.db = db
        self.config = config or DriverConfig()
        self.config.validate()
        rng = make_rng(seed, "driver")
        self.ctx = TpccContext(db=db, scale=scale or TpccScale(),
                               warehouses=warehouses, rng=rng,
                               nurand=NURand(make_rng(seed, "nurand")))
        self._mix_types = list(self.config.mix.keys())
        self._mix_weights = [self.config.mix[t] for t in self._mix_types]
        self.metrics = Metrics()
        self._slots: list[_ClientSlot | None] = [None] * self.config.clients
        self._eligible_at: list[int] = [db.clock.now] * self.config.clients
        self._next_maintenance = (db.clock.now
                                  + self.config.maintenance_interval_usec)
        self.maintenance_runs = 0

    # -- client lifecycle -----------------------------------------------------

    def _start_txn(self) -> _ClientSlot:
        type_ = self.ctx.rng.choices(self._mix_types,
                                     weights=self._mix_weights)[0]
        txn = self.db.begin()
        generator = PROFILES[type_](self.ctx, txn)
        return _ClientSlot(generator=generator, txn=txn, type=type_,
                           start_usec=self.db.clock.now)

    def _finish(self, slot: _ClientSlot, committed: bool,
                spec_rollback: bool = False,
                serialization_abort: bool = False) -> None:
        if committed:
            self.db.commit(slot.txn)
        else:
            self.db.abort(slot.txn)
        self.metrics.record(TxnOutcome(
            type=slot.type,
            committed=committed,
            response_usec=self.db.clock.now - slot.start_usec,
            spec_rollback=spec_rollback,
            serialization_abort=serialization_abort,
        ), finished_at_usec=self.db.clock.now)

    def _step(self, index: int) -> bool:
        """Advance one client one step; returns True if a txn finished."""
        slot = self._slots[index]
        if slot is None:
            slot = self._slots[index] = self._start_txn()
            self._eligible_at[index] = self.db.clock.now
        self.db.clock.advance(self.config.cpu_per_step_usec)
        try:
            next(slot.generator)
        except StopIteration:
            self._finish(slot, committed=True)
            self._finish_slot(index)
            return True
        except SpecRollback:
            self._finish(slot, committed=False, spec_rollback=True)
            self._finish_slot(index)
            return True
        except SerializationError:
            self._finish(slot, committed=False, serialization_abort=True)
            self._finish_slot(index)
            return True
        return False

    def _finish_slot(self, index: int) -> None:
        """Mark a client idle and schedule its next arrival."""
        self._slots[index] = None
        self._eligible_at[index] = (self.db.clock.now
                                    + self.config.think_time_usec)

    def _round(self) -> None:
        """One scheduling round over all clients.

        Clients still in think time are skipped; when everyone is thinking
        the clock jumps to the earliest arrival (idle system).
        """
        progressed = False
        for index in range(self.config.clients):
            if (self._slots[index] is None
                    and self.db.clock.now < self._eligible_at[index]):
                continue
            self._step(index)
            progressed = True
        if not progressed:
            self.db.clock.advance_to(min(self._eligible_at))

    # -- run loops -------------------------------------------------------------------

    def run_for(self, duration_usec: int) -> Metrics:
        """Run until the simulated clock advances by ``duration_usec``."""
        clock = self.db.clock
        self.metrics.start_usec = clock.now
        deadline = clock.now + duration_usec
        while clock.now < deadline:
            self._round()
            self._background()
        self._drain()
        self.metrics.end_usec = clock.now
        return self.metrics

    def run_transactions(self, count: int) -> Metrics:
        """Run until ``count`` transactions finished (commit or abort)."""
        clock = self.db.clock
        self.metrics.start_usec = clock.now
        while len(self.metrics.outcomes) < count:
            self._round()
            self._background()
        self._drain()
        self.metrics.end_usec = clock.now
        return self.metrics

    def _drain(self) -> None:
        """Finish every in-flight transaction (closed books at run end)."""
        for index in range(self.config.clients):
            while self._slots[index] is not None:
                self._step(index)

    def _background(self) -> None:
        self.db.tick()
        if self.db.clock.now >= self._next_maintenance:
            self._next_maintenance += self.config.maintenance_interval_usec
            self.db.maintenance()
            self.maintenance_runs += 1
