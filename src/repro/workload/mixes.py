"""Transaction mixes.

The standard mix mirrors DBT2/TPC-C's minimum-percentage mix (NewOrder is
the throughput carrier at 45 %).  Two extra mixes feed the ablation
benches: an update-heavy mix that maximises version churn, and a read-mostly
mix for the scan/read-path experiments.
"""

from __future__ import annotations

from enum import Enum

from repro.workload import tpcc_txns


class TxnType(Enum):
    """The five TPC-C transaction profiles."""

    NEW_ORDER = "new_order"
    PAYMENT = "payment"
    ORDER_STATUS = "order_status"
    DELIVERY = "delivery"
    STOCK_LEVEL = "stock_level"


#: Generator factory per transaction type.
PROFILES = {
    TxnType.NEW_ORDER: tpcc_txns.new_order,
    TxnType.PAYMENT: tpcc_txns.payment,
    TxnType.ORDER_STATUS: tpcc_txns.order_status,
    TxnType.DELIVERY: tpcc_txns.delivery,
    TxnType.STOCK_LEVEL: tpcc_txns.stock_level,
}

#: DBT2 / TPC-C standard mix.
STANDARD_MIX: dict[TxnType, float] = {
    TxnType.NEW_ORDER: 0.45,
    TxnType.PAYMENT: 0.43,
    TxnType.ORDER_STATUS: 0.04,
    TxnType.DELIVERY: 0.04,
    TxnType.STOCK_LEVEL: 0.04,
}

#: Version-churn maximiser for the write-reduction ablations.
UPDATE_HEAVY_MIX: dict[TxnType, float] = {
    TxnType.NEW_ORDER: 0.50,
    TxnType.PAYMENT: 0.50,
}

#: Read path / scan experiments.
READ_MOSTLY_MIX: dict[TxnType, float] = {
    TxnType.NEW_ORDER: 0.05,
    TxnType.PAYMENT: 0.05,
    TxnType.ORDER_STATUS: 0.45,
    TxnType.STOCK_LEVEL: 0.45,
}


def validate_mix(mix: dict[TxnType, float]) -> None:
    """Raise ValueError unless the weights form a distribution."""
    if not mix:
        raise ValueError("empty transaction mix")
    total = sum(mix.values())
    if abs(total - 1.0) > 1e-9:
        raise ValueError(f"mix weights sum to {total}, expected 1.0")
    if any(w < 0 for w in mix.values()):
        raise ValueError("negative mix weight")
