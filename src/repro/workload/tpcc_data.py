"""TPC-C initial population (DBT2-style loader).

Rows are generated deterministically from the run seed, with TPC-C's
last-name syllable construction and padded string fields sized so relative
row weights track the spec (stock and customer rows dominate the initial
footprint; order lines dominate growth).  Loading runs in batched
transactions so the append stores / heap fill realistically rather than in
one giant transaction.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.common.rng import make_rng
from repro.db.database import Database
from repro.txn.manager import Transaction
from repro.workload import tpcc_schema as ts
from repro.workload.tpcc_schema import TpccScale

#: TPC-C clause 4.3.2.3 last-name syllables.
NAME_SYLLABLES = ("BAR", "OUGHT", "ABLE", "PRI", "PRES",
                  "ESE", "ANTI", "CALLY", "ATION", "EING")


def last_name(number: int) -> str:
    """Spec last-name construction from a three-digit number."""
    return (NAME_SYLLABLES[(number // 100) % 10]
            + NAME_SYLLABLES[(number // 10) % 10]
            + NAME_SYLLABLES[number % 10])


def _pad(rng: random.Random, n: int) -> str:
    """Deterministic filler string of length ``n``."""
    return "".join(rng.choice("abcdefghijklmnopqrstuvwxyz") for _ in range(n))


@dataclass
class LoadStats:
    """What the loader inserted."""

    warehouses: int = 0
    rows: int = 0
    transactions: int = 0


class TpccLoader:
    """Populates a Database with ``warehouses`` of scaled TPC-C data."""

    def __init__(self, db: Database, scale: TpccScale | None = None,
                 seed: int = 42, batch_rows: int = 500) -> None:
        self.db = db
        self.scale = scale or TpccScale()
        self.scale.validate()
        self.seed = seed
        self.batch_rows = batch_rows
        self.stats = LoadStats()
        self._txn: Transaction | None = None
        self._txn_rows = 0

    # -- batched-transaction plumbing ------------------------------------------

    def _insert(self, table: str, row: tuple) -> None:
        if self._txn is None:
            self._txn = self.db.begin()
        self.db.insert(self._txn, table, row)
        self.stats.rows += 1
        self._txn_rows += 1
        if self._txn_rows >= self.batch_rows:
            self._flush()

    def _flush(self) -> None:
        if self._txn is not None:
            self.db.commit(self._txn)
            self.stats.transactions += 1
            self._txn = None
            self._txn_rows = 0
            self.db.tick()

    # -- population --------------------------------------------------------------

    def load(self, warehouses: int) -> LoadStats:
        """Populate items plus ``warehouses`` full warehouses."""
        if warehouses < 1:
            raise ValueError(f"need at least one warehouse, got {warehouses}")
        self._load_items()
        for w_id in range(1, warehouses + 1):
            self._load_warehouse(w_id)
        self._flush()
        self.stats.warehouses = warehouses
        return self.stats

    def _load_items(self) -> None:
        rng = make_rng(self.seed, "items")
        for i_id in range(1, self.scale.items + 1):
            self._insert(ts.ITEM, (
                i_id, rng.randint(1, 10_000), f"item-{i_id:06d}",
                round(rng.uniform(1.0, 100.0), 2), _pad(rng, 26)))

    def _load_warehouse(self, w_id: int) -> None:
        rng = make_rng(self.seed, "wh", w_id)
        self._insert(ts.WAREHOUSE, (
            w_id, f"W{w_id:04d}", _pad(rng, 20), _pad(rng, 20),
            _pad(rng, 2).upper(), f"{rng.randint(0, 99999):05d}1111",
            round(rng.uniform(0.0, 0.2), 4), 300_000.0))
        for i_id in range(1, self.scale.stock_per_warehouse + 1):
            self._insert(ts.STOCK, (
                w_id, i_id, rng.randint(10, 100), _pad(rng, 24),
                0.0, 0, 0, _pad(rng, 40)))
        for d_id in range(1, self.scale.districts_per_warehouse + 1):
            self._load_district(w_id, d_id, rng)

    def _load_district(self, w_id: int, d_id: int,
                       rng: random.Random) -> None:
        next_o_id = self.scale.initial_orders_per_district + 1
        self._insert(ts.DISTRICT, (
            w_id, d_id, f"D{d_id:02d}", _pad(rng, 20), _pad(rng, 20),
            _pad(rng, 2).upper(), f"{rng.randint(0, 99999):05d}1111",
            round(rng.uniform(0.0, 0.2), 4), 30_000.0, next_o_id))
        for c_id in range(1, self.scale.customers_per_district + 1):
            self._load_customer(w_id, d_id, c_id, rng)
        self._load_initial_orders(w_id, d_id, rng)

    def _load_customer(self, w_id: int, d_id: int, c_id: int,
                       rng: random.Random) -> None:
        name_no = c_id - 1 if c_id <= 1000 else rng.randint(0, 999)
        credit = "BC" if rng.random() < 0.10 else "GC"
        self._insert(ts.CUSTOMER, (
            w_id, d_id, c_id, _pad(rng, 12), "OE", last_name(name_no),
            _pad(rng, 20), _pad(rng, 20), _pad(rng, 2).upper(),
            f"{rng.randint(0, 99999):05d}1111", _pad(rng, 16), 0,
            credit, 50_000.0, round(rng.uniform(0.0, 0.5), 4),
            -10.0, 10.0, 1, 0, _pad(rng, 120)))
        self._insert(ts.HISTORY, (
            c_id, d_id, w_id, d_id, w_id, 0, 10.0, _pad(rng, 18)))

    def _load_initial_orders(self, w_id: int, d_id: int,
                             rng: random.Random) -> None:
        customers = list(range(1, self.scale.customers_per_district + 1))
        rng.shuffle(customers)
        for o_id in range(1, self.scale.initial_orders_per_district + 1):
            c_id = customers[(o_id - 1) % len(customers)]
            ol_cnt = rng.randint(self.scale.min_order_lines,
                                 self.scale.max_order_lines)
            undelivered = (o_id
                           > self.scale.initial_orders_per_district * 7 // 10)
            carrier = 0 if undelivered else rng.randint(1, 10)
            self._insert(ts.ORDERS, (
                w_id, d_id, o_id, c_id, 0, carrier, ol_cnt, 1))
            if undelivered:
                self._insert(ts.NEW_ORDER, (w_id, d_id, o_id))
            for number in range(1, ol_cnt + 1):
                self._insert(ts.ORDER_LINE, (
                    w_id, d_id, o_id, number,
                    rng.randint(1, self.scale.items), w_id,
                    0 if undelivered else 1,
                    5, round(rng.uniform(0.01, 9999.99), 2), _pad(rng, 24)))
