"""TPC-C-style workload: schema, loader, transactions, driver, metrics."""

from repro.workload.consistency import ConsistencyReport, check
from repro.workload.driver import DriverConfig, TpccDriver
from repro.workload.synthetic import SyntheticWorkload, create_synth_table
from repro.workload.metrics import Metrics, RunSummary, TxnOutcome, percentile
from repro.workload.mixes import (
    PROFILES,
    READ_MOSTLY_MIX,
    STANDARD_MIX,
    UPDATE_HEAVY_MIX,
    TxnType,
    validate_mix,
)
from repro.workload.tpcc_data import LoadStats, TpccLoader, last_name
from repro.workload.tpcc_schema import (
    ALL_TABLES,
    INDEXES,
    SCHEMAS,
    TpccScale,
    create_tpcc_tables,
)

__all__ = [
    "ALL_TABLES",
    "ConsistencyReport",
    "DriverConfig",
    "INDEXES",
    "LoadStats",
    "Metrics",
    "PROFILES",
    "READ_MOSTLY_MIX",
    "RunSummary",
    "SCHEMAS",
    "STANDARD_MIX",
    "SyntheticWorkload",
    "TpccDriver",
    "TpccLoader",
    "TpccScale",
    "TxnOutcome",
    "TxnType",
    "UPDATE_HEAVY_MIX",
    "check",
    "create_synth_table",
    "create_tpcc_tables",
    "last_name",
    "percentile",
    "validate_mix",
]
