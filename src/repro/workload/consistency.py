"""TPC-C consistency conditions as executable checks.

The TPC-C specification (clause 3.3.2) defines consistency conditions that
must hold before and after any benchmark run.  They make a merciless
engine-correctness oracle: every lost update, phantom insert, broken index
or GC bug eventually violates one.  The stress tests run them after churny
interleaved workloads on both engines.

Implemented conditions (numbered as in the spec):

1. ``W_YTD = Σ D_YTD`` over each warehouse's districts.
2. ``D_NEXT_O_ID - 1 = max(O_ID) = max(NO_O_ID)`` per district.
3. The NEW-ORDER ids of a district form a contiguous range.
4. ``Σ O_OL_CNT = count(ORDER-LINE)`` per district.

Plus two structural checks this implementation adds:

5. Every order's line count matches its ``O_OL_CNT`` exactly.
6. Primary-key uniqueness: no two *visible* rows share a primary key.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.db.database import Database
from repro.txn.manager import Transaction
from repro.workload import tpcc_schema as ts


@dataclass
class ConsistencyReport:
    """Violations found by one full check (empty == consistent)."""

    violations: list[str] = field(default_factory=list)

    @property
    def consistent(self) -> bool:
        """True when every condition held."""
        return not self.violations

    def _fail(self, condition: int, message: str) -> None:
        self.violations.append(f"condition {condition}: {message}")


def check(db: Database, txn: Transaction | None = None,
          ytd_baseline_per_district: float = 30_000.0,
          ) -> ConsistencyReport:
    """Run every condition against a consistent snapshot.

    ``ytd_baseline_per_district`` is the loader's initial D_YTD (the spec
    loads 30 000.00 per district and 300 000.00 per warehouse, which the
    scaled loader keeps).
    """
    report = ConsistencyReport()
    own_txn = txn is None
    if own_txn:
        txn = db.begin()
    try:
        _check_ytd(db, txn, report, ytd_baseline_per_district)
        orders = [row for _r, row in db.scan(txn, ts.ORDERS)]
        new_orders = [row for _r, row in db.scan(txn, ts.NEW_ORDER)]
        lines = [row for _r, row in db.scan(txn, ts.ORDER_LINE)]
        districts = [row for _r, row in db.scan(txn, ts.DISTRICT)]
        _check_order_ids(report, districts, orders, new_orders)
        _check_new_order_contiguous(report, new_orders)
        _check_order_line_counts(report, orders, lines)
        _check_pk_uniqueness(db, txn, report)
    finally:
        if own_txn:
            db.commit(txn)
    return report


def _check_ytd(db: Database, txn: Transaction, report: ConsistencyReport,
               baseline: float) -> None:
    w_ytd = {row[0]: row[7] for _r, row in db.scan(txn, ts.WAREHOUSE)}
    d_ytd: dict[int, float] = defaultdict(float)
    d_count: dict[int, int] = defaultdict(int)
    for _r, row in db.scan(txn, ts.DISTRICT):
        d_ytd[row[0]] += row[8]
        d_count[row[0]] += 1
    for w_id, ytd in w_ytd.items():
        district_delta = d_ytd[w_id] - baseline * d_count[w_id]
        warehouse_delta = ytd - 300_000.0
        if abs(district_delta - warehouse_delta) > 0.01:
            report._fail(1, f"W{w_id}: W_YTD delta {warehouse_delta:.2f} "
                            f"!= sum(D_YTD) delta {district_delta:.2f}")


def _check_order_ids(report: ConsistencyReport, districts, orders,
                     new_orders) -> None:
    max_o: dict[tuple[int, int], int] = defaultdict(int)
    for row in orders:
        key = (row[0], row[1])
        max_o[key] = max(max_o[key], row[2])
    max_no: dict[tuple[int, int], int] = defaultdict(int)
    for row in new_orders:
        key = (row[0], row[1])
        max_no[key] = max(max_no[key], row[2])
    for district in districts:
        key = (district[0], district[1])
        next_o_id = district[9]
        if max_o[key] and next_o_id - 1 != max_o[key]:
            report._fail(2, f"district {key}: D_NEXT_O_ID-1="
                            f"{next_o_id - 1} != max(O_ID)={max_o[key]}")
        if max_no[key] and max_no[key] > max_o[key]:
            report._fail(2, f"district {key}: max(NO_O_ID)={max_no[key]} "
                            f"> max(O_ID)={max_o[key]}")


def _check_new_order_contiguous(report: ConsistencyReport,
                                new_orders) -> None:
    per_district: dict[tuple[int, int], list[int]] = defaultdict(list)
    for row in new_orders:
        per_district[(row[0], row[1])].append(row[2])
    for key, o_ids in per_district.items():
        o_ids.sort()
        expected = list(range(o_ids[0], o_ids[0] + len(o_ids)))
        if o_ids != expected:
            report._fail(3, f"district {key}: NEW-ORDER ids {o_ids[:5]}... "
                            "are not contiguous")


def _check_order_line_counts(report: ConsistencyReport, orders,
                             lines) -> None:
    line_counts: dict[tuple[int, int, int], int] = defaultdict(int)
    district_lines: dict[tuple[int, int], int] = defaultdict(int)
    for row in lines:
        line_counts[(row[0], row[1], row[2])] += 1
        district_lines[(row[0], row[1])] += 1
    district_ol_cnt: dict[tuple[int, int], int] = defaultdict(int)
    for row in orders:
        key = (row[0], row[1], row[2])
        district_ol_cnt[(row[0], row[1])] += row[6]
        if line_counts[key] != row[6]:
            report._fail(5, f"order {key}: O_OL_CNT={row[6]} but "
                            f"{line_counts[key]} order lines exist")
    for key, expected in district_ol_cnt.items():
        if district_lines[key] != expected:
            report._fail(4, f"district {key}: sum(O_OL_CNT)={expected} != "
                            f"count(ORDER-LINE)={district_lines[key]}")


def _check_pk_uniqueness(db: Database, txn: Transaction,
                         report: ConsistencyReport) -> None:
    for name in ts.ALL_TABLES:
        relation = db.table(name)
        if "pk" not in relation.indexes:
            continue
        definition, _tree = relation.index("pk")
        seen: set = set()
        for _ref, row in db.scan(txn, name):
            key = definition.key_of(relation.schema, row)
            if key in seen:
                report._fail(6, f"{name}: duplicate visible pk {key!r}")
            seen.add(key)
