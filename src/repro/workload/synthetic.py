"""Synthetic workloads: precise, contention-free instruments.

The TPC-C-style driver exercises realism (conflicts, mixes, skew); these
generators exercise *control*: exact numbers of updates over exact row
populations with chosen skew, single- or multi-client, so device- and
engine-level ablations can attribute every byte.  All generators work
against the :class:`~repro.db.database.Database` facade and both engines.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.common.rng import make_rng
from repro.db.catalog import IndexDef
from repro.db.database import Database, ItemRef
from repro.db.schema import ColType, Schema

#: Schema used by every synthetic workload.
SYNTH_SCHEMA = Schema.of(("id", ColType.INT), ("payload", ColType.STR),
                         ("counter", ColType.INT))


def create_synth_table(db: Database, name: str = "synth") -> None:
    """Create the synthetic relation with a primary-key index."""
    db.create_table(name, SYNTH_SCHEMA,
                    indexes=[IndexDef("pk", ("id",), unique=True)])


@dataclass
class SyntheticStats:
    """What a synthetic run did."""

    inserts: int = 0
    updates: int = 0
    reads: int = 0
    deletes: int = 0
    maintenance_runs: int = 0


class SyntheticWorkload:
    """Deterministic update/read/delete churn over one relation."""

    def __init__(self, db: Database, rows: int, payload_bytes: int = 200,
                 table: str = "synth", seed: int = 42) -> None:
        if rows < 1:
            raise ValueError(f"need at least one row, got {rows}")
        self.db = db
        self.table = table
        self.payload = "x" * payload_bytes
        self.rng: random.Random = make_rng(seed, "synthetic", table)
        self.stats = SyntheticStats()
        if table not in db.tables:
            create_synth_table(db, table)
        txn = db.begin()
        self.refs: list[ItemRef] = list(db.bulk_insert(
            txn, table, [(i, self.payload, 0) for i in range(rows)]))
        db.commit(txn)
        self.stats.inserts = rows

    # -- row selection -----------------------------------------------------------

    def _pick(self, skew: float) -> int:
        """Zipf-ish pick: ``skew=0`` uniform; higher skews favour low ids."""
        if skew <= 0:
            return self.rng.randrange(len(self.refs))
        # inverse-power transform of a uniform variate
        u = self.rng.random()
        index = int(len(self.refs) * (u ** (1.0 + skew)))
        return min(index, len(self.refs) - 1)

    # -- operations ------------------------------------------------------------------

    def update_round(self, count: int, skew: float = 0.0) -> None:
        """Run ``count`` single-row read-modify-write transactions."""
        for _ in range(count):
            index = self._pick(skew)
            ref = self.refs[index]
            txn = self.db.begin()
            row = self.db.read(txn, self.table, ref)
            self.refs[index] = self.db.update(
                txn, self.table, ref, (row[0], row[1], row[2] + 1))
            self.db.commit(txn)
            self.db.tick()
            self.stats.updates += 1

    def read_round(self, count: int, skew: float = 0.0) -> int:
        """Run ``count`` single-row reads; returns the counter sum."""
        total = 0
        txn = self.db.begin()
        for _ in range(count):
            row = self.db.read(txn, self.table,
                               self.refs[self._pick(skew)])
            total += row[2]
            self.stats.reads += 1
        self.db.commit(txn)
        return total

    def delete_fraction(self, fraction: float) -> int:
        """Delete a random fraction of the population; returns how many."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction out of [0,1]: {fraction}")
        victims = self.rng.sample(range(len(self.refs)),
                                  int(len(self.refs) * fraction))
        txn = self.db.begin()
        for index in sorted(victims, reverse=True):
            self.db.delete(txn, self.table, self.refs[index])
            del self.refs[index]
            self.stats.deletes += 1
        self.db.commit(txn)
        return len(victims)

    def maintain(self) -> None:
        """Run GC / VACUUM."""
        self.db.maintenance()
        self.stats.maintenance_runs += 1

    def verify(self) -> bool:
        """Check every surviving row reads back consistently."""
        txn = self.db.begin()
        ok = all(self.db.read(txn, self.table, ref) is not None
                 for ref in self.refs)
        visible = sum(1 for _ in self.db.scan(txn, self.table))
        self.db.commit(txn)
        return ok and visible == len(self.refs)
