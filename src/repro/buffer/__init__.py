"""Buffer management: page cache, background writer (t1), checkpointer (t2)."""

from repro.buffer.background_writer import BackgroundWriter
from repro.buffer.checkpointer import Checkpointer
from repro.buffer.manager import BufferManager, BufferStats, PageKey

__all__ = [
    "BackgroundWriter",
    "BufferManager",
    "BufferStats",
    "Checkpointer",
    "PageKey",
]
