"""Checkpointer — the paper's flush threshold *t2* (piggy-back).

On a (long) checkpoint interval every dirty buffer page is written back and
subscribed append stores are asked to seal their working pages.  Under
threshold **t2** a SIAS-V append page normally reaches the device only when
*full* (the append store seals at its fill target); the checkpoint merely
piggy-backs the final partial page — so pages arrive densely packed, which is
where the paper's 97 % write reduction and ~12 % space reduction come from.
"""

from __future__ import annotations

import threading
from typing import Callable

from repro.buffer.manager import BufferManager
from repro.common.clock import SimClock


class Checkpointer:
    """Interval-driven full flush with seal subscriptions."""

    def __init__(self, buffer: BufferManager, clock: SimClock,
                 interval_usec: int) -> None:
        self.buffer = buffer
        self.clock = clock
        self.interval_usec = interval_usec
        self._next_run = clock.now + interval_usec
        self._subscribers: list[Callable[[], None]] = []
        self._post_subscribers: list[Callable[[], object]] = []
        self.checkpoints = 0
        self.pages_written = 0
        self._mu = threading.RLock()

    def subscribe(self, callback: Callable[[], None]) -> None:
        """Register a pre-flush callback (t2 piggy-back seal hook)."""
        self._subscribers.append(callback)

    def subscribe_post(self, callback: Callable[[], object]) -> None:
        """Register a post-flush callback (e.g. WAL segment recycling)."""
        self._post_subscribers.append(callback)

    def maybe_run(self) -> int:
        """Run due checkpoints; returns how many executed.

        Thread-safe and non-blocking: when workers race a due checkpoint,
        one runs it and the rest return 0 instead of re-running it.
        """
        if not self._mu.acquire(blocking=False):
            return 0
        try:
            ran = 0
            while self.clock.now >= self._next_run:
                self._next_run += self.interval_usec
                self.run_now()
                ran += 1
            return ran
        finally:
            self._mu.release()

    def run_now(self) -> int:
        """Execute one checkpoint immediately; returns pages written."""
        with self._mu:
            self.checkpoints += 1
            for callback in self._subscribers:
                callback()
            written = self.buffer.flush_all()
            self.pages_written += written
            for callback in self._post_subscribers:
                callback()
            return written
