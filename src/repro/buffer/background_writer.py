"""Background writer — the paper's flush threshold *t1*.

Models PostgreSQL's bgwriter: on a fixed simulated-time interval it writes
back a batch of dirty buffer pages, and it gives append-storage engines a
hook (:meth:`BackgroundWriter.subscribe`) fired on every tick.  Under
threshold **t1** the SIAS-V append store seals its working append page on
that tick *regardless of fill degree* — which is exactly why the paper finds
t1 "less suitable": sparsely filled pages are persisted too frequently,
wasting space and multiplying write requests.
"""

from __future__ import annotations

import threading
from typing import Callable

from repro.buffer.manager import BufferManager
from repro.common.clock import SimClock


class BackgroundWriter:
    """Interval-driven dirty-page writer with tick subscriptions."""

    def __init__(self, buffer: BufferManager, clock: SimClock,
                 interval_usec: int, batch_pages: int) -> None:
        self.buffer = buffer
        self.clock = clock
        self.interval_usec = interval_usec
        self.batch_pages = batch_pages
        self._next_run = clock.now + interval_usec
        self._subscribers: list[Callable[[], None]] = []
        self.runs = 0
        self.pages_written = 0
        self._mu = threading.Lock()

    def subscribe(self, callback: Callable[[], None]) -> None:
        """Register a callback fired once per tick (t1 seal hook)."""
        self._subscribers.append(callback)

    def maybe_run(self) -> int:
        """Run zero or more ticks to catch up with the clock.

        Called by the driver between transactions; returns the number of
        ticks executed.  Each tick notifies subscribers first (so append
        engines can seal working pages into the dirty set) and then flushes
        up to ``batch_pages`` dirty pages in one parallel batch.

        Thread-safe and non-blocking: when several workers race a due
        tick, one runs it and the rest return 0 immediately rather than
        queueing up to run the same tick again.
        """
        if not self._mu.acquire(blocking=False):
            return 0
        try:
            ticks = 0
            while self.clock.now >= self._next_run:
                self._next_run += self.interval_usec
                ticks += 1
                self.runs += 1
                for callback in self._subscribers:
                    callback()
                dirty = self.buffer.dirty_keys()[: self.batch_pages]
                self.pages_written += self.buffer.flush_batch(dirty)
            return ticks
        finally:
            self._mu.release()

    def force_tick(self) -> None:
        """Run one tick immediately (tests and shutdown paths)."""
        with self._mu:
            self._next_run = self.clock.now
            self.runs += 1
            for callback in self._subscribers:
                callback()
            dirty = self.buffer.dirty_keys()[: self.batch_pages]
            self.pages_written += self.buffer.flush_batch(dirty)
            self._next_run = self.clock.now + self.interval_usec
