"""Buffer manager: clock-sweep page cache over a tablespace.

Both engines run on the same buffer manager, so every performance delta in
the experiments comes from the storage *algorithm*, not from cache tuning.
Frames hold deserialised :class:`~repro.pages.base.Page` objects; dirty
frames are written back on eviction, by the background writer, or at
checkpoints.  The eviction policy is the clock-sweep second-chance algorithm
PostgreSQL uses.

A note on the paper's "simplified buffer management" claim: SIAS-V pages are
immutable once flushed, so the buffer never needs to write back a SIAS-V data
page a second time — only the baseline's heap pages cycle through the dirty
state repeatedly.  This falls out naturally here: the SIAS-V engine inserts
sealed append pages as *clean* frames via :meth:`BufferManager.put_clean`.

Hot-path engineering (all behaviour-preserving):

* **O(1) clock sweep** — frames carry intrusive prev/next links forming a
  circular sweep order; install, drop and eviction are pointer splices
  instead of list shifts, and stale keys never linger in the order.
* **O(1) dirty bookkeeping** — an incrementally maintained dirty set
  replaces the full-pool scan the background writer and checkpointer used
  to pay per tick.
* **Sealed-page byte cache** — clean frames remember their encoded page
  image (the bytes read from, or just written to, the device).  Because
  sealed SIAS-V pages and persisted VIDmap buckets never change, their
  ``to_bytes`` on writeback is free; the cache is invalidated the moment a
  frame is dirtied.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.common.errors import NoFreeFrameError, PinError
from repro.pages.base import Page
from repro.storage.tablespace import Tablespace

#: Buffer key: (file_id, page_no).
PageKey = tuple[int, int]


@dataclass
class BufferStats:
    """Cache effectiveness and writeback counters."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0

    @property
    def hit_ratio(self) -> float:
        """Hits per lookup (1.0 when everything was cached)."""
        total = self.hits + self.misses
        return 1.0 if total == 0 else self.hits / total


@dataclass
class _Frame:
    #: None while the frame is a *placeholder* — installed by the thread
    #: that took the miss, holding ``latch`` for the duration of the read.
    page: Page | None
    dirty: bool = False
    pins: int = 0
    referenced: bool = True
    #: encoded page image while the frame is clean (None once dirtied)
    raw: bytes | None = None
    #: intrusive circular clock links (keys of the sweep-order neighbours)
    key: PageKey = field(default=(0, 0))
    prev: PageKey = field(default=(0, 0))
    next: PageKey = field(default=(0, 0))
    #: frame latch, held across the miss I/O; a second thread faulting the
    #: same page blocks here instead of issuing a duplicate device read
    latch: threading.RLock = field(default_factory=threading.RLock,
                                   repr=False, compare=False)


class BufferManager:
    """Fixed-capacity page cache with clock-sweep eviction.

    Thread-safe: one pool mutex guards the frame table, clock order and
    dirty set; it is held for bookkeeping and eviction writeback but
    **not** across miss I/O.  A miss installs an io-pinned *placeholder*
    frame whose per-frame latch is held while the device read runs, so two
    workers faulting *different* pages read concurrently, while a worker
    faulting the *same* page blocks on the frame latch instead of issuing
    a duplicate read.  The clock sweep is pin-count-aware: placeholders
    are io-pinned and therefore never evicted mid-load.

    The *hit* path takes no lock at all: a frame lookup is one GIL-atomic
    dict read, and the page it returns stays valid even if the sweep
    evicts the frame concurrently (eviction writes dirty pages back but
    never mutates the page object).  The referenced-bit store and the hit
    counter are benign races — the former only biases the sweep, the
    latter is monitoring.
    """

    def __init__(self, tablespace: Tablespace, pool_pages: int) -> None:
        if pool_pages < 1:
            raise NoFreeFrameError(f"pool needs frames, got {pool_pages}")
        self.tablespace = tablespace
        self.pool_pages = pool_pages
        self._frames: dict[PageKey, _Frame] = {}
        #: clock hand: key of the next frame the sweep will examine
        self._hand: PageKey | None = None
        #: incrementally maintained dirty set (insertion-ordered)
        self._dirty: dict[PageKey, None] = {}
        self.stats = BufferStats()
        # Plain (non-reentrant) mutex: no locked method calls another
        # locked method, and a plain Lock's fast path is cheaper on the
        # install/evict/flush paths that do take it.
        self._mu = threading.Lock()

    # -- lookups -----------------------------------------------------------------

    def get_page(self, file_id: int, page_no: int) -> Page:
        """Return the page, reading it from the device on a miss."""
        key = (file_id, page_no)
        # Lock-free hit: one dict read plus a `page is not None` check.
        # An in-flight placeholder (page still None) and a miss both fall
        # through to the locked slow path, which re-checks under the mutex.
        frame = self._frames.get(key)
        if frame is not None:
            page = frame.page
            if page is not None:
                frame.referenced = True
                self.stats.hits += 1
                return page
        while True:
            with self._mu:
                frame = self._frames.get(key)
                if frame is not None and frame.page is not None:
                    self.stats.hits += 1
                    frame.referenced = True
                    return frame.page
                if frame is None:
                    self.stats.misses += 1
                    placeholder = self._install_placeholder(key)
                    break
            # another thread is mid-read on this page: block on its frame
            # latch until the read completes, then retry the lookup
            with frame.latch:
                pass
        try:
            lba = self.tablespace.lba_of(file_id, page_no)
            # read via the tablespace: transient device faults get a
            # bounded retry before the miss fails
            raw = self.tablespace.read_page(lba)
            page = Page.from_bytes(raw)
        except BaseException:
            self._abandon_placeholder(key, placeholder)
            raise
        self._publish_placeholder(key, placeholder, page, raw)
        return page

    def get_page_pinned(self, file_id: int, page_no: int) -> Page:
        """Return the page with an eviction pin held; caller must unpin.

        This is the get-for-write path: a caller about to mutate a page
        object and ``mark_dirty`` it must hold a pin for the duration,
        otherwise a concurrent miss can evict the (clean) frame between
        the lock-free lookup and the dirtying — the mutation would land
        on an orphaned page object (lost if the page is re-faulted, or a
        spurious :class:`PinError` if it is not).  The pin is taken under
        the pool mutex only after re-checking that the frame still holds
        the very object the lookup returned; an eviction that slips in
        between simply costs one more fault-and-retry.
        """
        key = (file_id, page_no)
        while True:
            page = self.get_page(file_id, page_no)
            with self._mu:
                frame = self._frames.get(key)
                if frame is not None and frame.page is page:
                    frame.pins += 1
                    return page
            # evicted between the lookup and the pin: fault it back in

    def get_pages(self, file_id: int, page_nos: list[int]) -> list[Page]:
        """Batched lookup: misses are fetched with one parallel device batch.

        This is the read path the paper calls "parallelisable, complementing
        the parallelism of the Flash storage" — the VIDmap-mediated scan
        fetches many independent pages at once.
        """
        # Lock-free fast path: every page resident and published.  A miss
        # or in-flight placeholder abandons it for the locked path below
        # (hits are only counted here on full success, so nothing is
        # double-counted when we fall through).
        frames = self._frames
        pages: dict[int, Page] = {}
        for page_no in page_nos:
            if page_no in pages:
                continue
            frame = frames.get((file_id, page_no))
            if frame is None:
                break
            page = frame.page
            if page is None:
                break
            frame.referenced = True
            pages[page_no] = page
        else:
            self.stats.hits += len(pages)
            return [pages[p] for p in page_nos]
        result: dict[int, Page] = {}
        missing: list[int] = []
        in_flight: list[_Frame] = []
        with self._mu:
            for page_no in page_nos:
                if page_no in result or page_no in missing:
                    continue
                frame = self._frames.get((file_id, page_no))
                if frame is not None and frame.page is not None:
                    self.stats.hits += 1
                    frame.referenced = True
                    result[page_no] = frame.page
                elif frame is not None:
                    in_flight.append(frame)
                else:
                    missing.append(page_no)
            placeholders = {}
            if missing:
                self.stats.misses += len(missing)
                for page_no in missing:
                    placeholders[page_no] = self._install_placeholder(
                        (file_id, page_no))
        if missing:
            try:
                lbas = [self.tablespace.lba_of(file_id, p) for p in missing]
                raws = self.tablespace.read_pages(lbas)
            except BaseException:
                for page_no, placeholder in placeholders.items():
                    self._abandon_placeholder((file_id, page_no), placeholder)
                raise
            for page_no, raw in zip(missing, raws):
                page = Page.from_bytes(raw)
                self._publish_placeholder((file_id, page_no),
                                          placeholders[page_no], page, raw)
                result[page_no] = page
        for frame in in_flight:
            with frame.latch:
                pass
        # pages that were in flight are resolved via the ordinary path
        return [result[p] if p in result else self.get_page(file_id, p)
                for p in page_nos]

    def _install_placeholder(self, key: PageKey) -> _Frame:
        """Reserve a frame for a page being read (pool mutex held).

        The placeholder is io-pinned (the sweep skips it) and its latch is
        pre-acquired so same-page faulters block until the read publishes.
        """
        placeholder = _Frame(page=None, dirty=False, pins=1)
        placeholder.latch.acquire()
        try:
            self._install(key, placeholder)
        except BaseException:
            placeholder.latch.release()
            raise
        return placeholder

    def _publish_placeholder(self, key: PageKey, placeholder: _Frame,
                             page: Page, raw: bytes) -> None:
        """Fill a placeholder with the page just read and wake waiters."""
        with self._mu:
            placeholder.page = page
            placeholder.raw = raw
            placeholder.referenced = True
            placeholder.pins -= 1
        placeholder.latch.release()

    def _abandon_placeholder(self, key: PageKey, placeholder: _Frame) -> None:
        """Undo a failed miss: drop the placeholder and wake waiters."""
        with self._mu:
            if self._frames.get(key) is placeholder:
                del self._frames[key]
                self._unlink(placeholder)
        placeholder.latch.release()

    # -- insertion of fresh pages ----------------------------------------------------

    def put_dirty(self, file_id: int, page_no: int, page: Page,
                  pinned: bool = False) -> None:
        """Register a freshly created mutable page (baseline heap extends).

        With ``pinned=True`` the frame is installed already holding one
        pin, so the caller can keep mutating the page object without an
        eviction window between install and pin (caller must unpin).
        """
        with self._mu:
            self.tablespace.ensure_page(file_id, page_no)
            self._install((file_id, page_no),
                          _Frame(page=page, dirty=True,
                                 pins=1 if pinned else 0))

    def put_clean(self, file_id: int, page_no: int, page: Page,
                  raw: bytes | None = None) -> None:
        """Cache a page that is already persistent (sealed append pages).

        ``raw`` optionally carries the encoded image the caller just wrote
        to the device, seeding the byte cache so the frame never re-encodes.
        """
        with self._mu:
            self.tablespace.ensure_page(file_id, page_no)
            self._install((file_id, page_no),
                          _Frame(page=page, dirty=False, raw=raw))

    # -- state transitions ---------------------------------------------------------------

    def _frame(self, key: PageKey) -> _Frame:
        try:
            return self._frames[key]
        except KeyError:
            raise PinError(f"page {key} is not resident in the pool") from None

    def mark_dirty(self, file_id: int, page_no: int) -> None:
        """Flag a cached page as modified (drops its cached byte image)."""
        key = (file_id, page_no)
        with self._mu:
            frame = self._frame(key)
            frame.dirty = True
            frame.raw = None
            self._dirty[key] = None

    def pin(self, file_id: int, page_no: int) -> None:
        """Protect a frame from eviction while a caller works on it."""
        with self._mu:
            self._frame((file_id, page_no)).pins += 1

    def unpin(self, file_id: int, page_no: int) -> None:
        """Release a pin."""
        with self._mu:
            frame = self._frame((file_id, page_no))
            if frame.pins <= 0:
                raise PinError(f"unpin without pin on {(file_id, page_no)}")
            frame.pins -= 1

    def is_cached(self, file_id: int, page_no: int) -> bool:
        """Whether the page currently resides in the pool."""
        return (file_id, page_no) in self._frames

    def is_dirty(self, file_id: int, page_no: int) -> bool:
        """Whether the cached page has unwritten modifications."""
        return self._frame((file_id, page_no)).dirty

    def cached_bytes(self, file_id: int, page_no: int) -> bytes | None:
        """Encoded image of a clean resident page, if the cache holds one."""
        frame = self._frames.get((file_id, page_no))
        if frame is None:
            return None
        return frame.raw

    def dirty_keys(self) -> list[PageKey]:
        """Keys of all dirty frames (bgwriter / checkpoint input) — O(dirty)."""
        with self._mu:
            return list(self._dirty)

    def drop(self, file_id: int, page_no: int) -> None:
        """Discard a frame without writeback (GC'd / truncated pages)."""
        key = (file_id, page_no)
        with self._mu:
            frame = self._frames.pop(key, None)
            if frame is not None:
                self._unlink(frame)
                self._dirty.pop(key, None)

    def invalidate_all(self) -> None:
        """Empty the pool without writeback (cold-cache experiments)."""
        with self._mu:
            self._frames.clear()
            self._dirty.clear()
            self._hand = None

    # -- writeback ----------------------------------------------------------------------------

    def flush_page(self, file_id: int, page_no: int) -> bool:
        """Write one dirty page back; returns True if a write happened."""
        key = (file_id, page_no)
        with self._mu:
            frame = self._frames.get(key)
            if frame is None or not frame.dirty:
                return False
            self._writeback(key, frame)
            return True

    def flush_batch(self, keys: list[PageKey]) -> int:
        """Write a set of dirty pages asynchronously (background flush).

        Background writers and checkpoints run off the transaction path:
        the writes occupy device channels (later reads queue behind them)
        but the caller does not wait.  Only the *eviction* writeback —
        a foreground backend needing a frame right now — is synchronous.
        """
        flushed = 0
        with self._mu:
            for key in keys:
                frame = self._frames.get(key)
                if frame is None or not frame.dirty:
                    continue
                lba = self.tablespace.ensure_page(*key)
                data = frame.page.to_bytes()
                self.tablespace.device.write_page_async(lba, data)
                frame.dirty = False
                frame.raw = data
                self._dirty.pop(key, None)
                self.stats.writebacks += 1
                flushed += 1
        return flushed

    def flush_all(self) -> int:
        """Checkpoint: write back every dirty frame."""
        return self.flush_batch(self.dirty_keys())

    def _writeback(self, key: PageKey, frame: _Frame) -> None:
        lba = self.tablespace.ensure_page(*key)
        data = frame.raw if frame.raw is not None else frame.page.to_bytes()
        self.tablespace.device.write_page(lba, data)
        frame.dirty = False
        frame.raw = data
        self._dirty.pop(key, None)
        self.stats.writebacks += 1

    # -- clock-sweep internals -----------------------------------------------------------------

    def _install(self, key: PageKey, frame: _Frame) -> None:
        existing = self._frames.get(key)
        if existing is not None:
            if existing.pins > 0:
                raise PinError(
                    f"page {key} is pinned; cannot replace its frame")
            # Keep the clock position of the replaced frame, and never
            # silently lose modifications: a dirty frame replaced by a
            # clean one stays dirty until the new content is flushed.
            frame.key = key
            frame.prev = existing.prev
            frame.next = existing.next
            if existing.dirty and not frame.dirty:
                frame.dirty = True
                frame.raw = None
            self._frames[key] = frame
            if frame.dirty:
                self._dirty[key] = None
            self._relink(frame)
            return
        if len(self._frames) >= self.pool_pages:
            self._evict_one()
        self._frames[key] = frame
        frame.key = key
        self._append_to_clock(frame)
        if frame.dirty:
            self._dirty[key] = None

    def _append_to_clock(self, frame: _Frame) -> None:
        """Insert the frame at the tail of the sweep order (before the hand)."""
        if self._hand is None:
            frame.prev = frame.next = frame.key
            self._hand = frame.key
            return
        hand = self._frames[self._hand]
        tail = self._frames[hand.prev]
        frame.prev = tail.key
        frame.next = hand.key
        tail.next = frame.key
        hand.prev = frame.key

    def _relink(self, frame: _Frame) -> None:
        """Point the neighbours (and self-loops) at the replacing frame."""
        self._frames[frame.prev].next = frame.key
        self._frames[frame.next].prev = frame.key

    def _unlink(self, frame: _Frame) -> None:
        """Splice a frame out of the sweep order (frame already popped)."""
        if frame.next == frame.key:  # last frame in the pool
            self._hand = None
            return
        prev = self._frames[frame.prev]
        nxt = self._frames[frame.next]
        prev.next = nxt.key
        nxt.prev = prev.key
        if self._hand == frame.key:
            self._hand = nxt.key

    def _evict_one(self) -> None:
        swept = 0
        limit = 2 * len(self._frames) + 1
        while swept < limit:
            assert self._hand is not None
            frame = self._frames[self._hand]
            if frame.pins > 0:
                self._hand = frame.next
                swept += 1
                continue
            if frame.referenced:
                frame.referenced = False
                self._hand = frame.next
                swept += 1
                continue
            if frame.dirty:
                self._writeback(frame.key, frame)
            del self._frames[frame.key]
            self._unlink(frame)
            self.stats.evictions += 1
            return
        raise NoFreeFrameError(
            "all buffer frames are pinned; cannot evict")
