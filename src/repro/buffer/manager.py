"""Buffer manager: clock-sweep page cache over a tablespace.

Both engines run on the same buffer manager, so every performance delta in
the experiments comes from the storage *algorithm*, not from cache tuning.
Frames hold deserialised :class:`~repro.pages.base.Page` objects; dirty
frames are written back on eviction, by the background writer, or at
checkpoints.  The eviction policy is the clock-sweep second-chance algorithm
PostgreSQL uses.

A note on the paper's "simplified buffer management" claim: SIAS-V pages are
immutable once flushed, so the buffer never needs to write back a SIAS-V data
page a second time — only the baseline's heap pages cycle through the dirty
state repeatedly.  This falls out naturally here: the SIAS-V engine inserts
sealed append pages as *clean* frames via :meth:`BufferManager.put_clean`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import NoFreeFrameError, PinError
from repro.pages.base import Page
from repro.storage.tablespace import Tablespace

#: Buffer key: (file_id, page_no).
PageKey = tuple[int, int]


@dataclass
class BufferStats:
    """Cache effectiveness and writeback counters."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0

    @property
    def hit_ratio(self) -> float:
        """Hits per lookup (1.0 when everything was cached)."""
        total = self.hits + self.misses
        return 1.0 if total == 0 else self.hits / total


@dataclass
class _Frame:
    page: Page
    dirty: bool = False
    pins: int = 0
    referenced: bool = True


class BufferManager:
    """Fixed-capacity page cache with clock-sweep eviction."""

    def __init__(self, tablespace: Tablespace, pool_pages: int) -> None:
        if pool_pages < 1:
            raise NoFreeFrameError(f"pool needs frames, got {pool_pages}")
        self.tablespace = tablespace
        self.pool_pages = pool_pages
        self._frames: dict[PageKey, _Frame] = {}
        self._clock_order: list[PageKey] = []
        self._clock_hand = 0
        self.stats = BufferStats()

    # -- lookups -----------------------------------------------------------------

    def get_page(self, file_id: int, page_no: int) -> Page:
        """Return the page, reading it from the device on a miss."""
        key = (file_id, page_no)
        frame = self._frames.get(key)
        if frame is not None:
            self.stats.hits += 1
            frame.referenced = True
            return frame.page
        self.stats.misses += 1
        lba = self.tablespace.lba_of(file_id, page_no)
        raw = self.tablespace.device.read_page(lba)
        page = Page.from_bytes(raw)
        self._install(key, _Frame(page=page, dirty=False))
        return page

    def get_pages(self, file_id: int, page_nos: list[int]) -> list[Page]:
        """Batched lookup: misses are fetched with one parallel device batch.

        This is the read path the paper calls "parallelisable, complementing
        the parallelism of the Flash storage" — the VIDmap-mediated scan
        fetches many independent pages at once.
        """
        result: dict[int, Page] = {}
        missing: list[int] = []
        for page_no in page_nos:
            frame = self._frames.get((file_id, page_no))
            if frame is not None:
                self.stats.hits += 1
                frame.referenced = True
                result[page_no] = frame.page
            elif page_no not in result:
                missing.append(page_no)
        missing = list(dict.fromkeys(missing))
        if missing:
            self.stats.misses += len(missing)
            lbas = [self.tablespace.lba_of(file_id, p) for p in missing]
            raws = self.tablespace.device.read_pages(lbas)
            for page_no, raw in zip(missing, raws):
                page = Page.from_bytes(raw)
                self._install((file_id, page_no), _Frame(page=page))
                result[page_no] = page
        return [result[p] for p in page_nos]

    # -- insertion of fresh pages ----------------------------------------------------

    def put_dirty(self, file_id: int, page_no: int, page: Page) -> None:
        """Register a freshly created mutable page (baseline heap extends)."""
        self.tablespace.ensure_page(file_id, page_no)
        self._install((file_id, page_no), _Frame(page=page, dirty=True))

    def put_clean(self, file_id: int, page_no: int, page: Page) -> None:
        """Cache a page that is already persistent (sealed append pages)."""
        self.tablespace.ensure_page(file_id, page_no)
        self._install((file_id, page_no), _Frame(page=page, dirty=False))

    # -- state transitions ---------------------------------------------------------------

    def _frame(self, key: PageKey) -> _Frame:
        try:
            return self._frames[key]
        except KeyError:
            raise PinError(f"page {key} is not resident in the pool") from None

    def mark_dirty(self, file_id: int, page_no: int) -> None:
        """Flag a cached page as modified."""
        self._frame((file_id, page_no)).dirty = True

    def pin(self, file_id: int, page_no: int) -> None:
        """Protect a frame from eviction while a caller works on it."""
        self._frame((file_id, page_no)).pins += 1

    def unpin(self, file_id: int, page_no: int) -> None:
        """Release a pin."""
        frame = self._frame((file_id, page_no))
        if frame.pins <= 0:
            raise PinError(f"unpin without pin on {(file_id, page_no)}")
        frame.pins -= 1

    def is_cached(self, file_id: int, page_no: int) -> bool:
        """Whether the page currently resides in the pool."""
        return (file_id, page_no) in self._frames

    def is_dirty(self, file_id: int, page_no: int) -> bool:
        """Whether the cached page has unwritten modifications."""
        return self._frame((file_id, page_no)).dirty

    def dirty_keys(self) -> list[PageKey]:
        """Keys of all dirty frames (bgwriter / checkpoint input)."""
        return [k for k, f in self._frames.items() if f.dirty]

    def drop(self, file_id: int, page_no: int) -> None:
        """Discard a frame without writeback (GC'd / truncated pages)."""
        self._frames.pop((file_id, page_no), None)

    def invalidate_all(self) -> None:
        """Empty the pool without writeback (cold-cache experiments)."""
        self._frames.clear()
        self._clock_order.clear()
        self._clock_hand = 0

    # -- writeback ----------------------------------------------------------------------------

    def flush_page(self, file_id: int, page_no: int) -> bool:
        """Write one dirty page back; returns True if a write happened."""
        key = (file_id, page_no)
        frame = self._frames.get(key)
        if frame is None or not frame.dirty:
            return False
        self._writeback(key, frame)
        return True

    def flush_batch(self, keys: list[PageKey]) -> int:
        """Write a set of dirty pages asynchronously (background flush).

        Background writers and checkpoints run off the transaction path:
        the writes occupy device channels (later reads queue behind them)
        but the caller does not wait.  Only the *eviction* writeback —
        a foreground backend needing a frame right now — is synchronous.
        """
        flushed = 0
        for key in keys:
            frame = self._frames.get(key)
            if frame is None or not frame.dirty:
                continue
            lba = self.tablespace.ensure_page(*key)
            self.tablespace.device.write_page_async(lba,
                                                    frame.page.to_bytes())
            frame.dirty = False
            self.stats.writebacks += 1
            flushed += 1
        return flushed

    def flush_all(self) -> int:
        """Checkpoint: write back every dirty frame."""
        return self.flush_batch(self.dirty_keys())

    def _writeback(self, key: PageKey, frame: _Frame) -> None:
        lba = self.tablespace.ensure_page(*key)
        self.tablespace.device.write_page(lba, frame.page.to_bytes())
        frame.dirty = False
        self.stats.writebacks += 1

    # -- clock-sweep internals -----------------------------------------------------------------

    def _install(self, key: PageKey, frame: _Frame) -> None:
        existing = self._frames.get(key)
        if existing is not None:
            if existing.pins > 0:
                raise PinError(
                    f"page {key} is pinned; cannot replace its frame")
            self._frames[key] = frame
            return
        if len(self._frames) >= self.pool_pages:
            self._evict_one()
        self._frames[key] = frame
        self._clock_order.append(key)

    def _evict_one(self) -> None:
        swept = 0
        limit = 2 * len(self._clock_order) + 1
        while swept < limit:
            if self._clock_hand >= len(self._clock_order):
                self._clock_hand = 0
            key = self._clock_order[self._clock_hand]
            frame = self._frames.get(key)
            if frame is None:
                self._clock_order.pop(self._clock_hand)
                continue
            if frame.pins > 0:
                self._clock_hand += 1
                swept += 1
                continue
            if frame.referenced:
                frame.referenced = False
                self._clock_hand += 1
                swept += 1
                continue
            if frame.dirty:
                self._writeback(key, frame)
            del self._frames[key]
            self._clock_order.pop(self._clock_hand)
            self.stats.evictions += 1
            return
        raise NoFreeFrameError(
            "all buffer frames are pinned; cannot evict")
