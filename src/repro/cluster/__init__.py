"""VID-range sharded cluster: shard map, supervisor, router, 2PC.

The paper's dense arithmetic VIDmap (``bucket = VID // 1024``) makes
contiguous VID-range ownership a pure arithmetic function — this package
uses exactly that to stripe each table's VID space across N independent
engine+server shards, fronted by a router that speaks the unmodified wire
protocol and drives two-phase commit for multi-shard transactions.

See ``docs/CLUSTER.md`` for the architecture and failure matrix.
"""

from repro.cluster.coordinator import CoordinatorLog
from repro.cluster.router import ClusterRouter, RouterConfig
from repro.cluster.shardmap import ShardMap
from repro.cluster.supervisor import ShardSupervisor, SupervisorConfig

__all__ = [
    "ClusterRouter",
    "CoordinatorLog",
    "RouterConfig",
    "ShardMap",
    "ShardSupervisor",
    "SupervisorConfig",
]
