"""ShardMap: arithmetic VID-range ownership over N shards.

The global VID space is striped in contiguous ``range_size``-sized blocks,
round-robin across shards — block ``b`` (global VIDs ``[b*R, (b+1)*R)``)
belongs to shard ``b % N``.  With ``range_size`` equal to the engines'
VIDmap bucket size (1024), one global block is exactly one VIDmap bucket:
the paper's ``bucket = VID // 1024`` arithmetic *is* the routing function.

Each shard keeps its own dense local VID space (its allocator starts at 0
and grows contiguously, exactly as a single-node engine does); the map is
a bijection between ``(shard, local VID)`` and global VIDs:

    ``shard_of(g)   = (g // R) % N``
    ``to_local(g)   = ((g // R) // N) * R + g % R``
    ``to_global(s, l) = ((l // R) * N + s) * R + l % R``

``to_global`` is strictly monotonic in ``l`` for a fixed shard, so a
shard's local VID order *is* global VID order restricted to that shard —
which is what lets the router merge per-shard range scans without sorting
state beyond a cursor.

Insert placement is round-robin over shards per insert/bulk-insert call,
so load and space spread evenly without any placement metadata: the local
VID the shard assigns comes back, ``to_global`` names it cluster-wide,
and from then on routing is pure arithmetic.
"""

from __future__ import annotations

import threading

#: default block size — one VIDmap bucket, the paper's own constant
DEFAULT_RANGE_SIZE = 1024


class ShardMap:
    """The cluster's partitioning function (pure arithmetic, no state
    beyond a round-robin placement cursor)."""

    def __init__(self, shards: int,
                 range_size: int = DEFAULT_RANGE_SIZE) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if range_size < 1:
            raise ValueError("range_size must be >= 1")
        self.shards = shards
        self.range_size = range_size
        self._mu = threading.Lock()
        self._next_placement = 0

    # -- routing -------------------------------------------------------------

    def shard_of(self, gvid: int) -> int:
        """The unique shard owning global VID ``gvid``."""
        if gvid < 0:
            raise ValueError(f"negative VID {gvid}")
        return (gvid // self.range_size) % self.shards

    def to_local(self, gvid: int) -> int:
        """Global VID → the owning shard's local VID."""
        if gvid < 0:
            raise ValueError(f"negative VID {gvid}")
        r = self.range_size
        return ((gvid // r) // self.shards) * r + gvid % r

    def to_global(self, shard: int, lvid: int) -> int:
        """``(shard, local VID)`` → global VID (inverse of the pair
        ``(shard_of, to_local)``)."""
        if not 0 <= shard < self.shards:
            raise ValueError(f"unknown shard {shard}")
        if lvid < 0:
            raise ValueError(f"negative VID {lvid}")
        r = self.range_size
        return ((lvid // r) * self.shards + shard) * r + lvid % r

    # -- placement -----------------------------------------------------------

    def place(self) -> int:
        """Round-robin shard for the next insert/bulk-insert call."""
        with self._mu:
            shard = self._next_placement
            self._next_placement = (self._next_placement + 1) % self.shards
            return shard

    # -- range splitting -----------------------------------------------------

    def _local_ceil(self, shard: int, gvid: int) -> int:
        """Smallest local VID on ``shard`` whose global VID is >= ``gvid``."""
        r = self.range_size
        block = gvid // r
        owned = block + ((shard - block) % self.shards)
        if owned == block:
            return (block // self.shards) * r + gvid % r
        return (owned // self.shards) * r

    def split_range(self, lo: int, hi: int) -> list[tuple[int, int, int]]:
        """Split global ``[lo, hi)`` into per-shard local ranges.

        Returns ``(shard, local_lo, local_hi)`` triples — every global VID
        in ``[lo, hi)`` falls in exactly one triple's local range on its
        owning shard, and the triples cover nothing outside it (the
        property test in ``tests/test_cluster.py`` proves both).
        """
        if lo < 0 or hi < lo:
            raise ValueError(f"bad range [{lo}, {hi})")
        out: list[tuple[int, int, int]] = []
        for shard in range(self.shards):
            local_lo = self._local_ceil(shard, lo)
            local_hi = self._local_ceil(shard, hi)
            if local_lo < local_hi:
                out.append((shard, local_lo, local_hi))
        return out
