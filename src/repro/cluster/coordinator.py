"""The coordinator's durable decision log (presumed abort).

Two-phase commit needs exactly one durable fact from the coordinator: the
**commit decision**.  Everything else is presumed — a global transaction
with no logged decision is *aborted*, so prepare votes, abort decisions
and per-participant acks never touch the log.  Two record kinds:

* ``commit`` — the decision, forced before any participant is told to
  commit.  It carries the participant list ``(shard, local txid)`` so a
  restarted coordinator can re-push the decision to exactly the shards
  that voted.
* ``end`` — bookkeeping, appended (unforced) once every participant acked
  the decision; it lets recovery skip fully-settled transactions.  Losing
  an ``end`` is harmless: re-pushing a commit decision is idempotent
  (``COMMIT_PREPARED`` answers False for an already-committed txn).

The log is JSON-lines on disk (one file per router) or purely in memory
(``path=None`` — tests hand the same instance to a successor router to
model the coordinator restarting with its durable state intact).
"""

from __future__ import annotations

import json
import os
import threading


class CoordinatorLog:
    """Append-only 2PC decision log with presumed-abort semantics."""

    def __init__(self, path: str | None = None) -> None:
        self.path = path
        self._mu = threading.Lock()
        self._records: list[dict] = []
        self.decisions_logged = 0
        self.ends_logged = 0
        if path is not None and os.path.exists(path):
            with open(path, "r", encoding="utf-8") as fh:
                for line in fh:
                    line = line.strip()
                    if line:
                        self._records.append(json.loads(line))

    def _append(self, record: dict, force: bool) -> None:
        with self._mu:
            self._records.append(record)
            if self.path is not None:
                with open(self.path, "a", encoding="utf-8") as fh:
                    fh.write(json.dumps(record) + "\n")
                    if force:
                        fh.flush()
                        os.fsync(fh.fileno())

    def log_commit(self, gtxid: int,
                   participants: list[tuple[int, int]]) -> None:
        """Force the commit decision (the 2PC point of no return)."""
        self._append({"type": "commit", "gtxid": gtxid,
                      "participants": [[s, t] for s, t in participants]},
                     force=True)
        self.decisions_logged += 1

    def log_end(self, gtxid: int) -> None:
        """All participants acked the decision; unforced bookkeeping."""
        self._append({"type": "end", "gtxid": gtxid}, force=False)
        self.ends_logged += 1

    def decided_commit(self, gtxid: int) -> bool:
        """Whether a commit decision was durably logged for ``gtxid``."""
        with self._mu:
            return any(r["type"] == "commit" and r["gtxid"] == gtxid
                       for r in self._records)

    def pending_decisions(self) -> dict[int, list[tuple[int, int]]]:
        """Commit decisions without an ``end``: must be re-pushed.

        ``{gtxid: [(shard, local txid), ...]}`` — what a restarted
        coordinator drives to completion before serving new work.
        """
        with self._mu:
            ended = {r["gtxid"] for r in self._records
                     if r["type"] == "end"}
            return {r["gtxid"]: [(s, t) for s, t in r["participants"]]
                    for r in self._records
                    if r["type"] == "commit" and r["gtxid"] not in ended}

    def max_gtxid(self) -> int:
        """Largest global txid ever logged (-1 if none) — the restart
        watermark the gtxid allocator must stay above."""
        with self._mu:
            return max((r["gtxid"] for r in self._records), default=-1)
