"""The cluster router: one wire endpoint fronting N engine shards.

The router speaks the *unmodified* wire protocol of
:mod:`repro.server.protocol`, so every existing client —
:class:`~repro.client.remote.RemoteDatabase`, the connection pool, the
TPC-C driver — works against a sharded cluster with zero changes.  Each
client transaction becomes a **global transaction**: the router allocates
a global txid, lazily begins a local transaction on every shard the
client's commands touch (pinned to one pooled connection per shard, so
shard-side session semantics are preserved), and translates item handles
between the global VID space and each shard's local one with the pure
arithmetic of :class:`~repro.cluster.shardmap.ShardMap`.

Commit is the interesting part:

* **read-only everywhere** — plain COMMIT on each shard; no coordination.
* **one writer** — plain COMMIT on that shard (1PC fast path): a single
  participant's atomicity is its own WAL's problem.
* **several writers** — full two-phase commit with **presumed abort**:
  PREPARE_TXN on every writer (each shard forces a PREPARE record through
  its WAL — that *is* the vote), then the commit decision is forced to the
  router's :class:`~repro.cluster.coordinator.CoordinatorLog`, then
  COMMIT_PREPARED is pushed to every participant.  A crash before the
  decision record leaves prepared shards in doubt; recovery resolves them
  by *presumption*: a logged decision is re-pushed, no decision means
  abort (:meth:`ClusterRouter.resolve_in_doubt`).

Fan-out reads (LOOKUP, SCAN, AGGREGATE, SCAN_VID_RANGE) hit every shard
and merge; SCAN_BATCH keeps the wire contract of an *opaque* cursor by
nesting the shard's own cursor inside a ``(shard, local_cursor)`` pair —
shards are streamed one after another, and within a shard local VID order
is global VID order (see the ShardMap monotonicity note).

Reads get one **cluster-wide snapshot**: the router picks a global read
timestamp — the minimum over every shard's *closed-timestamp* watermark
(``CLOSED_TS``), ratcheting quiet shards forward so the minimum tracks
the busiest shard — and lazily begins every per-shard local transaction
pinned to it (``BEGIN`` with the optional ``at_ts`` operand).  A
timestamp at or below a shard's watermark is provably stable (nothing
in flight can still commit under it; 2PC PREPARE holds the watermark
down until the decision lands), so fan-out ``LOOKUP/SCAN/AGGREGATE/
SCAN_VID_RANGE`` merges observe one atomic snapshot instead of one
snapshot per shard.  The timestamp is cached and refreshed after a
short interval or any global commit, so reads through one router also
see that router's own acknowledged writes.  The pre-PR-8 behaviour —
each shard snapshotting independently at first touch, which admits
*fractured reads* across a concurrent global commit — is kept behind
``RouterConfig.per_shard_snapshots`` for the anomaly reproducer; the
black-box SI checker (``experiments/si_check.py``) flags it there and
passes the default mode.  ``docs/CLUSTER.md`` ("Cluster-wide
snapshots") has the full timestamp flow.
"""

from __future__ import annotations

import asyncio
import contextlib
import dataclasses
import signal
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.common.errors import (
    AmbiguousResultError,
    CircuitOpenError,
    ProtocolError,
    RemoteError,
    TxnStateError,
)
from repro.client.pool import ConnectionPool, RetryPolicy
from repro.cluster.coordinator import CoordinatorLog
from repro.cluster.shardmap import DEFAULT_RANGE_SIZE, ShardMap
from repro.server.protocol import (
    Command,
    Status,
    decode_request,
    encode_response,
    error_payload,
    frame_length,
    status_for_exception,
)
from repro.server.session import Session, SessionManager

#: Commands a draining router still serves (mirrors the server's list).
_DRAIN_ALLOWED = frozenset({
    Command.PING, Command.COMMIT, Command.ABORT, Command.TXN_STATUS,
    Command.STATS, Command.SHUTDOWN, Command.CLOSED_TS,
})


@dataclass(frozen=True)
class RouterConfig:
    """Router service knobs (shard addresses are passed separately)."""

    host: str = "127.0.0.1"
    port: int = 0
    range_size: int = DEFAULT_RANGE_SIZE
    idle_timeout_sec: float = 60.0
    reaper_interval_sec: float = 1.0
    drain_timeout_sec: float = 5.0
    #: worker threads running blocking shard RPCs; each in-flight client
    #: command occupies one for its whole fan-out
    executor_workers: int = 8
    pool_size: int = 4
    connect_timeout_sec: float = 5.0
    request_timeout_sec: float = 30.0
    #: retry schedule toward the shards (None: pool default)
    retry: RetryPolicy | None = None
    #: bounded retries when pushing a logged 2PC decision to a shard;
    #: exhausting them leaves the decision pending for resolve_in_doubt
    decision_retry_attempts: int = 50
    decision_retry_delay_sec: float = 0.02
    #: how long an ambiguous COMMIT/PREPARE polls the shard's TXN_STATUS
    resolve_timeout_sec: float = 5.0
    #: re-push pending decisions / presume-abort orphans during start()
    resolve_on_start: bool = True
    #: client-side chaos toward the shards: a single plan for all, or a
    #: ``{shard_index: plan}`` dict (the shard-fault sweep's link faults)
    chaos: object | None = None
    #: durable coordinator log path (None: in-memory; tests hand the same
    #: CoordinatorLog instance to a successor router instead)
    coordinator_log_path: str | None = None
    #: how long the cached global read timestamp stays fresh; a global
    #: commit through this router invalidates it immediately, so the
    #: interval only bounds staleness against *other* writers
    snapshot_refresh_sec: float = 0.05
    #: legacy pre-PR-8 behaviour: every shard snapshots independently at
    #: first touch.  Admits fractured reads across a concurrent global
    #: commit — kept only so the anomaly stays reproducible (the SI
    #: checker must flag it; see docs/CLUSTER.md "Cluster-wide snapshots")
    per_shard_snapshots: bool = False

    def validate(self) -> None:
        """Raise on inconsistent settings."""
        if self.executor_workers < 1:
            raise ValueError("executor_workers must be >= 1")
        if self.decision_retry_attempts < 1:
            raise ValueError("decision_retry_attempts must be >= 1")
        if self.drain_timeout_sec < 0:
            raise ValueError("drain_timeout_sec must be >= 0")
        if self.snapshot_refresh_sec < 0:
            raise ValueError("snapshot_refresh_sec must be >= 0")


class ShardTxn:
    """One global transaction's state on one shard."""

    __slots__ = ("conn", "ltxid", "writes")

    def __init__(self, conn, ltxid: int) -> None:
        self.conn = conn
        self.ltxid = ltxid
        self.writes = 0


class GlobalTxn:
    """Router-side handle of one client transaction.

    Duck-types the :class:`~repro.txn.manager.Transaction` surface the
    session layer touches (``txid``), so :class:`SessionManager` is
    reused unchanged.  ``phase`` is a plain string — the router has no
    engine phases, only fates.
    """

    __slots__ = ("txid", "serializable", "phase", "shards", "read_ts")

    def __init__(self, gtxid: int, serializable: bool,
                 read_ts: int | None = None) -> None:
        self.txid = gtxid
        self.serializable = serializable
        self.phase = "active"
        self.shards: dict[int, ShardTxn] = {}
        #: the cluster-wide read timestamp every lazy per-shard BEGIN is
        #: pinned to; None in legacy per-shard-snapshot mode
        self.read_ts = read_ts


class _Fanout:
    """Per-command fan-out latency counters (STATS ``router.fanout``)."""

    __slots__ = ("calls", "total_usec", "max_usec")

    def __init__(self) -> None:
        self.calls = 0
        self.total_usec = 0.0
        self.max_usec = 0.0

    def note(self, wall_sec: float) -> None:
        usec = wall_sec * 1e6
        self.calls += 1
        self.total_usec += usec
        self.max_usec = max(self.max_usec, usec)

    def as_dict(self) -> dict:
        mean = self.total_usec / self.calls if self.calls else 0.0
        return {"calls": self.calls, "mean_usec": round(mean, 1),
                "max_usec": round(self.max_usec, 1)}


@dataclass
class RouterStats:
    """2PC and routing counters the STATS command reports."""

    gtxns_begun: int = 0
    commits_readonly: int = 0
    commits_1pc: int = 0
    commits_2pc: int = 0
    aborts: int = 0
    prepares_sent: int = 0
    prepare_failures: int = 0
    #: ambiguous PREPARE/COMMIT outcomes settled by polling TXN_STATUS
    fates_resolved: int = 0
    decision_pushes: int = 0
    decision_push_failures: int = 0
    #: prepared shard txns aborted by presumption (no logged decision)
    presumed_aborts: int = 0
    in_doubt_resolved: int = 0
    #: global-read-timestamp cache refreshes (CLOSED_TS fan-outs)
    snapshot_refreshes: int = 0
    #: lagging shards ratcheted forward during a refresh
    snapshot_ratchets: int = 0
    #: global transactions begun pinned to a cluster-wide timestamp
    begins_at_ts: int = 0
    #: fan-out commands (those contacting more than one shard)
    fanouts: int = 0
    fanout: dict = field(default_factory=dict)

    def note_fanout(self, name: str, wall_sec: float) -> None:
        self.fanouts += 1
        self.fanout.setdefault(name, _Fanout()).note(wall_sec)

    def as_dict(self) -> dict:
        out = {k: v for k, v in self.__dict__.items() if k != "fanout"}
        out["fanout"] = {name: f.as_dict()
                        for name, f in sorted(self.fanout.items())}
        return out


class _CommandCounter:
    __slots__ = ("calls", "ok", "errors", "total_wall", "max_wall")

    def __init__(self) -> None:
        self.calls = 0
        self.ok = 0
        self.errors = 0
        self.total_wall = 0.0
        self.max_wall = 0.0


class ClusterRouter:
    """One listening socket, N shards, unmodified wire protocol."""

    def __init__(self, shards: list[tuple[str, int]],
                 config: RouterConfig | None = None,
                 coordinator_log: CoordinatorLog | None = None) -> None:
        if not shards:
            raise ValueError("at least one shard address required")
        self.config = config or RouterConfig()
        self.config.validate()
        self.shard_addrs = [(h, p) for h, p in shards]
        self.shard_map = ShardMap(len(shards),
                                  range_size=self.config.range_size)
        self.coordinator_log = coordinator_log or CoordinatorLog(
            self.config.coordinator_log_path)
        self.pool = ConnectionPool(
            endpoints=self.shard_addrs, size=self.config.pool_size,
            retry=self.config.retry,
            connect_timeout_sec=self.config.connect_timeout_sec,
            request_timeout_sec=self.config.request_timeout_sec,
            chaos=self.config.chaos)
        self.sessions = SessionManager(self.config.idle_timeout_sec)
        self.stats = RouterStats()
        self._commands: dict[str, _CommandCounter] = {}
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.executor_workers,
            thread_name_prefix="router")
        self._executing = 0
        self._gtxid_mu = threading.Lock()
        # gtxids restart strictly above every durably known one so a fate
        # query for an old gtxid can never alias a new transaction
        self._next_gtxid = max(1, self.coordinator_log.max_gtxid() + 1)
        #: settled fates kept in memory: {gtxid: "committed"/"aborted"}
        self._fates: dict[int, str] = {}
        #: gtxids currently open (guards resolve_in_doubt against
        #: presuming-abort a transaction this router is mid-2PC on)
        self._open: dict[int, GlobalTxn] = {}
        # cluster-wide read-timestamp cache: min over shard watermarks,
        # monotone, invalidated by this router's own global commits
        self._snap_mu = threading.Lock()
        self._snapshot_ts: int | None = None
        self._snapshot_taken = 0.0
        self._snapshot_dirty = True
        #: straddle guard: every multi-shard commit carries *different*
        #: local txids on its participants (each shard's allocator runs
        #: its own course), so a global read timestamp landing inside
        #: ``[min ltxid, max ltxid)`` would see the transaction on one
        #: shard and miss it on another — a fractured read, and not just
        #: while the decision is being pushed: the window stays toxic
        #: forever.  Map of {gtxid: (min ltxid, max ltxid)}; refreshes
        #: step the candidate timestamp below any window it lands in, and
        #: windows are pruned once the monotone cache passes their top.
        #: Re-seeded across a router restart from the coordinator log's
        #: pending decisions (fully-pushed windows below the watermark
        #: need no guard by then; see _refresh_snapshot_ts).
        self._straddles: dict[int, tuple[int, int]] = {
            gtxid: (min(lt for _s, lt in parts), max(lt for _s, lt in parts))
            for gtxid, parts
            in self.coordinator_log.pending_decisions().items()
            if parts}
        #: 1PC commits whose fate could not be resolved before the retry
        #: budget ran out: ``{gtxid: (shard, local txid)}``.  TXN_STATUS
        #: re-asks the shard on demand; resolve_in_doubt sweeps the rest.
        self._in_doubt_1pc: dict[int, tuple[int, int]] = {}
        #: read-your-writes floor: the highest local txid of any commit
        #: this router acknowledged.  A refresh can legitimately compute a
        #: timestamp below it (a concurrent reader pins some shard's
        #: watermark under the commit), and that snapshot is *consistent*
        #: — but it must not be cached as fresh, or a begin right after
        #: the pinning reader finished would still be served a snapshot
        #: missing acked writes.
        self._commit_floor = 0
        self.address: tuple[str, int] | None = None
        self._server: asyncio.Server | None = None
        self._stop_event: asyncio.Event | None = None
        self._draining = False
        self._closing = False
        self._loop: asyncio.AbstractEventLoop | None = None
        self._reaper_task: asyncio.Task | None = None
        self._writers: dict[int, asyncio.StreamWriter] = {}
        self._handler_tasks: set[asyncio.Task] = set()
        self._thread: threading.Thread | None = None
        self._started_monotonic = 0.0
        self._handlers = {
            Command.PING: self._cmd_ping,
            Command.BEGIN: self._cmd_begin,
            Command.COMMIT: self._cmd_commit,
            Command.ABORT: self._cmd_abort,
            Command.CREATE_TABLE: self._cmd_create_table,
            Command.INSERT: self._cmd_insert,
            Command.BULK_INSERT: self._cmd_bulk_insert,
            Command.READ: self._cmd_read,
            Command.UPDATE: self._cmd_update,
            Command.DELETE: self._cmd_delete,
            Command.LOOKUP: self._cmd_lookup,
            Command.RANGE_LOOKUP: self._cmd_range_lookup,
            Command.SCAN: self._cmd_scan,
            Command.SCAN_BATCH: self._cmd_scan_batch,
            Command.AGGREGATE: self._cmd_aggregate,
            Command.SCAN_VID_RANGE: self._cmd_scan_vid_range,
            Command.TICK: self._cmd_tick,
            Command.MAINTENANCE: self._cmd_maintenance,
            Command.SNAPSHOT: self._cmd_snapshot,
            Command.STATS: self._cmd_stats,
            Command.CLOCK_NOW: self._cmd_clock_now,
            Command.CLOCK_ADVANCE: self._cmd_clock_advance,
            Command.CLOCK_ADVANCE_TO: self._cmd_clock_advance_to,
            Command.TXN_STATUS: self._cmd_txn_status,
            Command.CLOSED_TS: self._cmd_closed_ts,
            Command.SHUTDOWN: self._cmd_shutdown,
        }

    # -- gtxid allocation ----------------------------------------------------

    def _allocate_gtxid(self) -> int:
        with self._gtxid_mu:
            gtxid = self._next_gtxid
            self._next_gtxid += 1
            return gtxid

    def _bump_watermark(self, gtxid: int) -> None:
        with self._gtxid_mu:
            if gtxid >= self._next_gtxid:
                self._next_gtxid = gtxid + 1

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> tuple[str, int]:
        """Bind the socket (and settle any in-doubt 2PC state first)."""
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self._started_monotonic = time.monotonic()
        if self.config.resolve_on_start:
            await self._loop.run_in_executor(self._executor,
                                             self.resolve_in_doubt)
        self._server = await asyncio.start_server(
            self._handle, self.config.host, self.config.port)
        sock = self._server.sockets[0].getsockname()
        self.address = (sock[0], sock[1])
        self._reaper_task = asyncio.create_task(self._reaper())
        return self.address

    def request_stop(self) -> None:
        """Flip into drain (idempotent, safe from the loop thread)."""
        self._draining = True
        if self._stop_event is not None:
            self._stop_event.set()

    async def serve_until_stopped(self) -> None:
        """Block until :meth:`request_stop`, then tear everything down."""
        assert self._stop_event is not None, "start() first"
        await self._stop_event.wait()
        await self.stop()

    async def stop(self) -> None:
        """Drain in-flight global transactions, then close everything."""
        if self._server is None:
            return
        self.request_stop()
        await self._drain()
        self._closing = True
        self._server.close()
        await self._server.wait_closed()
        self._server = None
        if self._reaper_task is not None:
            self._reaper_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._reaper_task
            self._reaper_task = None
        for writer in list(self._writers.values()):
            writer.close()
        if self._handler_tasks:
            await asyncio.wait(self._handler_tasks, timeout=5.0)
        self._executor.shutdown(wait=True)
        self.pool.close()

    async def _drain(self) -> None:
        deadline = time.monotonic() + self.config.drain_timeout_sec
        while time.monotonic() < deadline:
            if self.sessions.in_flight_txns() == 0 and self._executing == 0:
                return
            await asyncio.sleep(0.02)
        for session in list(self.sessions):
            if session.txns:
                self.sessions.stats.drain_aborts += len(session.txns)
                writer = self._writers.pop(session.session_id, None)
                if writer is not None:
                    writer.close()
                await self._abort_orphans(self.sessions.close(session))

    def run(self) -> int:
        """Foreground serve loop (``repro cluster start``)."""
        async def main() -> None:
            await self.start()
            loop = asyncio.get_running_loop()
            for signum in (signal.SIGINT, signal.SIGTERM):
                with contextlib.suppress(NotImplementedError):
                    loop.add_signal_handler(signum, self.request_stop)
            host, port = self.address  # type: ignore[misc]
            print(f"repro cluster router listening on {host}:{port} "
                  f"({len(self.shard_addrs)} shards)", flush=True)
            await self.serve_until_stopped()

        asyncio.run(main())
        return 0

    def start_in_background(self) -> tuple[str, int]:
        """Serve from a dedicated thread; returns the bound address."""
        ready = threading.Event()
        failure: list[BaseException] = []

        def runner() -> None:
            async def main() -> None:
                await self.start()
                ready.set()
                await self.serve_until_stopped()
            try:
                asyncio.run(main())
            except BaseException as exc:
                failure.append(exc)
            finally:
                ready.set()

        self._thread = threading.Thread(target=runner, name="repro-router",
                                        daemon=True)
        self._thread.start()
        if not ready.wait(timeout=10.0):
            raise TimeoutError("router did not start within 10s")
        if failure:
            raise failure[0]
        assert self.address is not None
        return self.address

    def stop_in_background(self, timeout: float = 10.0) -> None:
        """Stop a background router and join its thread."""
        if self._thread is None:
            return
        if self._loop is not None and not self._loop.is_closed():
            with contextlib.suppress(RuntimeError):
                self._loop.call_soon_threadsafe(self.request_stop)
        self._thread.join(timeout)
        self._thread = None

    # -- connection handling (mirrors DatabaseServer) ------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handler_tasks.add(task)
        if self._draining:
            await self._refuse_connection(reader, writer)
            if task is not None:
                self._handler_tasks.discard(task)
            return
        peer = writer.get_extra_info("peername")
        session = self.sessions.open(str(peer), time.monotonic())
        self._writers[session.session_id] = writer
        try:
            await self._serve_connection(session, reader, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            self._writers.pop(session.session_id, None)
            await self._abort_orphans(self.sessions.close(session))
            writer.close()
            with contextlib.suppress(ConnectionError, OSError):
                await writer.wait_closed()
            if task is not None:
                self._handler_tasks.discard(task)

    async def _refuse_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self.sessions.stats.drain_refused += 1
        request_id = 0
        with contextlib.suppress(ConnectionError, ProtocolError,
                                 asyncio.IncompleteReadError,
                                 asyncio.TimeoutError):
            payload = await asyncio.wait_for(self._read_frame(reader),
                                             timeout=1.0)
            if payload is not None:
                request_id = decode_request(payload)[0]
        with contextlib.suppress(ConnectionError, OSError):
            writer.write(encode_response(request_id, Status.SHUTTING_DOWN,
                                         "router is draining"))
            await writer.drain()
        writer.close()
        with contextlib.suppress(ConnectionError, OSError):
            await writer.wait_closed()

    async def _serve_connection(self, session: Session,
                                reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        while not self._closing:
            payload = await self._read_frame(reader)
            if payload is None:
                return
            now = time.monotonic()
            try:
                request_id, command, args, deadline_ms = (
                    decode_request(payload))
            except ProtocolError as exc:
                writer.write(encode_response(0, Status.BAD_REQUEST,
                                             error_payload(exc)))
                await writer.drain()
                return
            session.deadline = (None if deadline_ms is None
                                else now + deadline_ms / 1000.0)
            session.begin_command(now)
            try:
                status, result = await self._execute(session, command, args)
            finally:
                session.end_command(time.monotonic())
                session.deadline = None
            writer.write(encode_response(request_id, status, result))
            await writer.drain()
            if command == Command.SHUTDOWN and status == Status.OK:
                self.request_stop()
                return
            if self._draining and not session.txns:
                return

    @staticmethod
    async def _read_frame(reader: asyncio.StreamReader) -> bytes | None:
        try:
            header = await reader.readexactly(4)
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:
                return None
            raise
        return await reader.readexactly(frame_length(header))

    async def _execute(self, session: Session, command: int,
                       args: tuple) -> tuple[Status, object]:
        handler = self._handlers.get(command)
        if handler is None:
            return Status.BAD_REQUEST, f"unknown command {command}"
        if (session.deadline is not None
                and time.monotonic() >= session.deadline):
            return (Status.DEADLINE_EXCEEDED,
                    f"{Command(command).name}: deadline passed on arrival")
        if self._draining and command not in _DRAIN_ALLOWED:
            owned = (args and isinstance(args[0], int)
                     and not isinstance(args[0], bool)
                     and args[0] in session.txns)
            if not owned:
                return Status.SHUTTING_DOWN, "router is draining"
        name = Command(command).name
        counter = self._commands.setdefault(name, _CommandCounter())
        counter.calls += 1
        started = time.monotonic()
        try:
            result = await handler(session, args)
        except asyncio.CancelledError:
            raise
        except BaseException as exc:
            counter.errors += 1
            return status_for_exception(exc), error_payload(exc)
        else:
            counter.ok += 1
            return Status.OK, result
        finally:
            wall = time.monotonic() - started
            counter.total_wall += wall
            counter.max_wall = max(counter.max_wall, wall)

    async def _run(self, fn):
        """Run a blocking shard-RPC job on the executor."""
        assert self._loop is not None
        self._executing += 1
        try:
            return await self._loop.run_in_executor(self._executor, fn)
        finally:
            self._executing -= 1

    async def _abort_orphans(self, orphans: list) -> None:
        for gtxn in orphans:
            if gtxn.phase != "active":
                continue
            with contextlib.suppress(Exception):
                await self._run(lambda g=gtxn: self._abort_job(g))
                self.sessions.stats.orphans_aborted += 1

    async def _reaper(self) -> None:
        interval = self.config.reaper_interval_sec
        if self.config.idle_timeout_sec > 0:
            interval = min(interval, self.config.idle_timeout_sec / 4)
        interval = max(interval, 0.02)
        while True:
            await asyncio.sleep(interval)
            now = time.monotonic()
            for session in self.sessions.idle_sessions(now):
                self.sessions.stats.idle_closed += 1
                await self._abort_orphans(self.sessions.close(session))
                writer = self._writers.pop(session.session_id, None)
                if writer is not None:
                    writer.close()

    # -- cluster-wide read timestamp -----------------------------------------

    def _cached_snapshot_ts(self) -> int | None:
        """The cached global read timestamp, or None when stale.

        Stale means: never taken, older than ``snapshot_refresh_sec``, or
        invalidated by a global commit through this router (so a client
        that got a commit ack always finds it in its next snapshot —
        read-your-writes per router, and the chaos sweep's
        acked-commits-visible oracle holds without waiting out the TTL).
        """
        with self._snap_mu:
            if (self._snapshot_ts is None or self._snapshot_dirty
                    or (time.monotonic() - self._snapshot_taken
                        > self.config.snapshot_refresh_sec)):
                return None
            return self._snapshot_ts

    def _refresh_snapshot_ts(self) -> int:
        """Recompute the global read timestamp (runs on the executor).

        Two rounds: read every shard's closed-timestamp watermark, then
        ratchet laggards forward to the leader's
        (:meth:`repro.txn.manager.TransactionManager.advance_to`) so an
        idle shard cannot drag the cluster-wide minimum arbitrarily far
        into the past.  A shard with in-flight transactions below the
        leader keeps its lower watermark, and the minimum correctly
        reflects it.  The result is monotone: per-shard watermarks only
        grow, and the cache never regresses.

        A shard that is unreachable mid-refresh (crash sweep, link fault)
        falls back to the cached value when one exists — older but still
        a valid stable snapshot; with no cache at all the error
        propagates and the client's retry policy applies.
        """
        try:
            marks = [self.pool.call(Command.CLOSED_TS, endpoint=shard)
                     for shard in range(len(self.shard_addrs))]
            top = max(marks)
            for shard, mark in enumerate(marks):
                if mark < top:
                    marks[shard] = self.pool.call(Command.CLOSED_TS, top,
                                                  endpoint=shard)
                    self.stats.snapshot_ratchets += 1
        except Exception:
            with self._snap_mu:
                # a TTL-expired cache is still a valid stable snapshot —
                # but a *dirty* one is not good enough: a commit was acked
                # since it was taken, and serving it would hide that
                # commit from the very client that acked it.  Better to
                # fail the BEGIN (client retry policy applies) than to
                # break read-your-writes.
                if self._snapshot_ts is not None and not self._snapshot_dirty:
                    return self._snapshot_ts
            raise
        ts = min(marks)
        with self._snap_mu:
            # step below any straddle window the candidate lands in: a
            # timestamp inside [lo, hi) would split that transaction
            # across shards.  Lowering can drop into another window, so
            # iterate to a fixpoint (strictly decreasing, hence finite).
            # The cache may keep an older value — every guarded window
            # was created by a transaction that began at-or-above the
            # then-cached timestamp, so the cache never straddles.
            stepped = True
            while stepped:
                stepped = False
                for lo, hi in self._straddles.values():
                    if lo <= ts < hi:
                        ts = lo - 1
                        stepped = True
            self.stats.snapshot_refreshes += 1
            if self._snapshot_ts is None or ts > self._snapshot_ts:
                self._snapshot_ts = ts
            # windows wholly below the monotone cache can never be
            # straddled again — the served timestamp only grows
            self._straddles = {g: w for g, w in self._straddles.items()
                               if w[1] > self._snapshot_ts}
            # below the read-your-writes floor the snapshot is consistent
            # but misses a commit this router already acked (a concurrent
            # reader pins some shard's watermark under it) — serve it, but
            # keep the cache dirty so the next BEGIN refreshes instead of
            # being handed the same stale view after the pin lifts
            if self._snapshot_ts >= self._commit_floor:
                self._snapshot_dirty = False
                self._snapshot_taken = time.monotonic()
            return self._snapshot_ts

    def _invalidate_snapshot_ts(self) -> None:
        with self._snap_mu:
            self._snapshot_dirty = True

    def _note_commit_floor(self, ltxid: int) -> None:
        """Raise the read-your-writes floor to an acked commit's txid."""
        with self._snap_mu:
            if ltxid > self._commit_floor:
                self._commit_floor = ltxid

    # -- shard plumbing (all run on the executor) ----------------------------

    def _shard_txn(self, gtxn: GlobalTxn, shard: int) -> ShardTxn:
        """The global txn's local transaction on ``shard`` (lazy BEGIN).

        The connection is pinned for the transaction's lifetime, exactly
        as :class:`RemoteDatabase` pins — shard-side transaction state is
        per-session, and the pin preserves the disconnect-aborts-orphans
        contract shard-side.
        """
        st = gtxn.shards.get(shard)
        if st is None:
            conn = self.pool.acquire(endpoint=shard)
            try:
                if gtxn.read_ts is None:
                    ltxid = self.pool.request(conn, Command.BEGIN,
                                              gtxn.serializable)
                else:
                    # pin the local snapshot to the global read timestamp:
                    # every shard this transaction touches sees the same
                    # cluster-wide state, however late it is first touched
                    ltxid = self.pool.request(conn, Command.BEGIN,
                                              gtxn.serializable,
                                              gtxn.read_ts)
            except BaseException:
                self.pool.release(conn)
                raise
            st = ShardTxn(conn, ltxid)
            gtxn.shards[shard] = st
        return st

    def _release_conns(self, gtxn: GlobalTxn) -> None:
        for st in gtxn.shards.values():
            conn, st.conn = st.conn, None
            if conn is not None:
                self.pool.release(conn)

    def _settle(self, gtxn: GlobalTxn, fate: str) -> None:
        gtxn.phase = fate
        self._fates[gtxn.txid] = fate
        self._open.pop(gtxn.txid, None)
        self._release_conns(gtxn)

    def _claim_gtxn(self, session: Session, txid: object) -> GlobalTxn:
        if not isinstance(txid, int) or isinstance(txid, bool):
            raise ProtocolError(f"expected txid, got {txid!r}")
        return session.claim(txid)

    @staticmethod
    def _as_gvid(ref: object) -> int:
        if isinstance(ref, bool) or not isinstance(ref, int):
            raise ProtocolError(
                f"cluster routing needs integer VID handles (sias-v), "
                f"got {ref!r}")
        return ref

    def _translate_pairs(self, shard: int, pairs) -> list[tuple]:
        to_global = self.shard_map.to_global
        return [(to_global(shard, ref), row) for ref, row in pairs]

    # -- commit / abort ------------------------------------------------------

    def _resolve_shard_fate(self, shard: int, ltxid: int) -> str:
        """Poll one shard for a local txn's fate after an ambiguous RPC.

        ``"active"`` is transient (the shard aborts the orphan when it
        notices the dead pinned connection), so poll until the fate is
        final — ``"prepared"`` counts as final: the vote was durably
        cast.  Returns ``"unknown"`` on timeout.
        """
        deadline = time.monotonic() + self.config.resolve_timeout_sec
        status = "unknown"
        while time.monotonic() < deadline:
            try:
                status = self.pool.call(Command.TXN_STATUS, ltxid,
                                        endpoint=shard)
            except Exception:
                # unreachable, draining or mid-restart: all transient
                # from the fate's point of view — keep polling
                time.sleep(0.05)
                continue
            if status in ("committed", "aborted", "prepared"):
                self.stats.fates_resolved += 1
                return status
            time.sleep(0.02)
        return status if status in ("committed", "aborted",
                                    "prepared") else "unknown"

    def _late_resolve_1pc(self, gtxid: int) -> str:
        """One fate-probe for a parked in-doubt 1PC commit.

        A single non-blocking attempt (callers poll): once the shard is
        reachable again its answer is final — txids are never reused, and
        recovery settles every non-durable transaction as aborted.
        """
        pending = self._in_doubt_1pc.get(gtxid)
        if pending is None:
            return self._fates.get(gtxid, "unknown")
        shard, ltxid = pending
        try:
            status = self.pool.call(Command.TXN_STATUS, ltxid,
                                    endpoint=shard)
        except Exception:
            return "unknown"  # still unreachable; the fate stays parked
        if status not in ("committed", "aborted"):
            return "unknown"
        self._in_doubt_1pc.pop(gtxid, None)
        self._fates[gtxid] = status
        self.stats.fates_resolved += 1
        if status == "committed":
            self._note_commit_floor(ltxid)
            self._invalidate_snapshot_ts()
            self.stats.commits_1pc += 1
        else:
            self.stats.aborts += 1
        return status

    def _push_decision(self, shard: int, ltxid: int,
                       command: Command) -> bool:
        """Deliver a phase-2 decision to one participant, bounded retry.

        COMMIT_PREPARED / ABORT_PREPARED are idempotent on the shard, so
        ambiguous outcomes are simply retried.  Returns False when the
        retry budget is exhausted — the decision stays logged and
        :meth:`resolve_in_doubt` finishes the push later.
        """
        self.stats.decision_pushes += 1
        for _attempt in range(self.config.decision_retry_attempts):
            try:
                self.pool.call(command, ltxid, endpoint=shard)
                return True
            except TxnStateError:
                # not prepared (any more): for COMMIT_PREPARED this means
                # the decision already landed via another path; for
                # ABORT_PREPARED, that the orphan was already settled
                return True
            except Exception:
                # connection death, open breaker, a draining or
                # restarting shard — whatever the shape, the decision did
                # not provably land.  Never let it propagate: past the
                # logged decision the global fate is sealed, and a raised
                # push would surface a bogus error for a committed txn.
                time.sleep(self.config.decision_retry_delay_sec)
        self.stats.decision_push_failures += 1
        return False

    def _abort_job(self, gtxn: GlobalTxn) -> None:
        if self.coordinator_log.decided_commit(gtxn.txid):
            # the commit decision is already durable: this abort lost the
            # race (e.g. the client gave up while decision pushes were
            # retrying against a restarting shard).  The fate is
            # committed; resolve_in_doubt finishes any outstanding push.
            self._settle(gtxn, "committed")
            raise TxnStateError(
                f"gtxn {gtxn.txid} already committed (decision logged)")
        for shard, st in gtxn.shards.items():
            if st.conn is not None and st.conn.connected:
                with contextlib.suppress(Exception):
                    self.pool.request(st.conn, Command.ABORT, st.ltxid)
            # a dead pinned connection aborts the shard-side orphan
        self._settle(gtxn, "aborted")
        self.stats.aborts += 1

    def _commit_job(self, gtxn: GlobalTxn) -> None:
        """The whole commit protocol, one executor job, shards in turn.

        Sequential on purpose: nesting per-shard futures inside an
        executor job can starve the pool under load, and with a handful
        of shards the latency win would be marginal.
        """
        writers = [(s, st) for s, st in sorted(gtxn.shards.items())
                   if st.writes > 0]
        readers = [(s, st) for s, st in sorted(gtxn.shards.items())
                   if st.writes == 0]
        # read-only participants just close their snapshots; any failure
        # is irrelevant to the global fate (disconnect aborts the orphan)
        for shard, st in readers:
            with contextlib.suppress(Exception):
                self.pool.request(st.conn, Command.COMMIT, st.ltxid)
        if not writers:
            self._settle(gtxn, "committed")
            self.stats.commits_readonly += 1
            return
        if len(writers) == 1:
            self._commit_one_phase(gtxn, *writers[0])
            return
        self._commit_two_phase(gtxn, writers)

    def _commit_one_phase(self, gtxn: GlobalTxn, shard: int,
                          st: ShardTxn) -> None:
        """Single-writer fast path: the shard's own WAL is the decision."""
        try:
            self.pool.request(st.conn, Command.COMMIT, st.ltxid)
        except AmbiguousResultError as exc:
            fate = self._resolve_shard_fate(shard, st.ltxid)
            if fate == "committed":
                self._note_commit_floor(st.ltxid)
                self._invalidate_snapshot_ts()
                self._settle(gtxn, "committed")
                self.stats.commits_1pc += 1
                return
            if fate == "unknown":
                # the shard stayed unreachable for the whole resolve
                # budget: its WAL may still apply this commit on recovery,
                # so the fate is genuinely undecided.  Settling "aborted"
                # here would pin a lie a recovering shard can contradict.
                # Park the mapping — TXN_STATUS re-asks the shard (txids
                # are never reused: the allocator survives the crash
                # model's power-fail) — and relay the ambiguity.
                self._in_doubt_1pc[gtxn.txid] = (shard, st.ltxid)
                self._settle(gtxn, "unknown")
                raise AmbiguousResultError(
                    f"commit of gtxn {gtxn.txid} in doubt on shard "
                    f"{shard}: {exc}") from exc
            self._settle(gtxn, "aborted")
            self.stats.aborts += 1
            raise RemoteError(
                f"commit of gtxn {gtxn.txid} lost on shard {shard} "
                f"({fate}): {exc}") from exc
        except BaseException:
            # shard-side commit failure (e.g. SSI abort) rolled it back
            self._settle(gtxn, "aborted")
            self.stats.aborts += 1
            raise
        self._note_commit_floor(st.ltxid)
        self._invalidate_snapshot_ts()
        self._settle(gtxn, "committed")
        self.stats.commits_1pc += 1

    def _commit_two_phase(self, gtxn: GlobalTxn,
                          writers: list[tuple[int, ShardTxn]]) -> None:
        # ---- phase 1: collect votes (PREPARE forces each shard's WAL)
        failure: BaseException | None = None
        prepared_upto = 0
        for i, (shard, st) in enumerate(writers):
            try:
                self.pool.request(st.conn, Command.PREPARE_TXN, st.ltxid,
                                  gtxn.txid)
                self.stats.prepares_sent += 1
                prepared_upto = i + 1
            except AmbiguousResultError as exc:
                # the vote may or may not have been cast — ask the shard
                fate = self._resolve_shard_fate(shard, st.ltxid)
                if fate == "prepared":
                    self.stats.prepares_sent += 1
                    prepared_upto = i + 1
                    continue
                failure = RemoteError(
                    f"prepare of gtxn {gtxn.txid} lost on shard {shard} "
                    f"({fate}): {exc}")
                break
            except BaseException as exc:
                # a clean NO vote: the shard aborted the local txn itself
                failure = exc
                break
        if failure is not None:
            self.stats.prepare_failures += 1
            # global abort: prepared participants need an explicit
            # decision (their locks are held), the rest are still ACTIVE
            # (plain ABORT) or already settled by the shard
            for shard, st in writers[:prepared_upto]:
                self._push_decision(shard, st.ltxid, Command.ABORT_PREPARED)
            for shard, st in writers[prepared_upto + 1:]:
                if st.conn is not None and st.conn.connected:
                    with contextlib.suppress(Exception):
                        self.pool.request(st.conn, Command.ABORT, st.ltxid)
            self._settle(gtxn, "aborted")
            self.stats.aborts += 1
            raise failure
        # ---- the decision: forced to the coordinator log, then final.
        # From here the transaction IS committed, whatever happens to the
        # decision pushes — resolve_in_doubt re-drives stragglers.
        self.coordinator_log.log_commit(
            gtxn.txid, [(s, st.ltxid) for s, st in writers])
        # guard the txid window this commit spans: its participants hold
        # different local txids, and a global read timestamp between them
        # would fracture the transaction.  Registered before any push, so
        # no refresh can slip between a shard applying and the guard
        # appearing; the window outlives the pushes (the asymmetry is
        # permanent) and is pruned once the served timestamp passes it.
        ltxids = [st.ltxid for _s, st in writers]
        with self._snap_mu:
            self._straddles[gtxn.txid] = (min(ltxids), max(ltxids))
            if max(ltxids) > self._commit_floor:
                self._commit_floor = max(ltxids)
        # the fate is sealed here; the next snapshot refresh must observe
        # it, so the cache goes stale before the client sees the ack
        self._invalidate_snapshot_ts()
        all_acked = True
        for shard, st in writers:
            if not self._push_decision(shard, st.ltxid,
                                       Command.COMMIT_PREPARED):
                all_acked = False
        if all_acked:
            self.coordinator_log.log_end(gtxn.txid)
        self._settle(gtxn, "committed")
        self.stats.commits_2pc += 1

    # -- in-doubt resolution -------------------------------------------------

    def resolve_in_doubt(self) -> dict[str, int]:
        """Settle every in-doubt prepared transaction in the cluster.

        Two sweeps: (1) re-push each logged-but-unfinished commit
        decision to its participant list; (2) ask every shard for its
        prepared transactions and settle the leftovers — commit if the
        log decided commit, otherwise **presumed abort**.  Transactions
        this router currently has mid-2PC are skipped.
        """
        out = {"committed": 0, "aborted": 0, "failed": 0}
        # parked 1PC fates first: a recovered shard answers instantly, and
        # a late "committed" must raise the commit floor before any
        # verification reads begin
        for gtxid in list(self._in_doubt_1pc):
            fate = self._late_resolve_1pc(gtxid)
            if fate == "committed":
                out["committed"] += 1
            elif fate == "aborted":
                out["aborted"] += 1
            else:
                out["failed"] += 1
        for gtxid, participants in self.coordinator_log.pending_decisions(
                ).items():
            if gtxid in self._open:
                continue
            acks = [self._push_decision(s, lt, Command.COMMIT_PREPARED)
                    for s, lt in participants]
            if participants:
                self._note_commit_floor(max(lt for _s, lt in participants))
            if all(acks):
                self.coordinator_log.log_end(gtxid)
                out["committed"] += 1
            else:
                out["failed"] += 1
        for shard in range(len(self.shard_addrs)):
            try:
                stats = self.pool.call(Command.STATS, endpoint=shard)
            except Exception:
                continue  # shard down: its in-doubt txns wait for it
            in_doubt = stats["engine"]["txns"].get("in_doubt_txns", ())
            for ltxid, gtxid in in_doubt:
                if gtxid >= 0:
                    self._bump_watermark(gtxid)
                if gtxid in self._open:
                    continue
                if (gtxid >= 0
                        and self.coordinator_log.decided_commit(gtxid)):
                    # covered by sweep (1) unless its end was logged on a
                    # prior run that this shard missed — push again
                    if self._push_decision(shard, ltxid,
                                           Command.COMMIT_PREPARED):
                        self._note_commit_floor(ltxid)
                        out["committed"] += 1
                    else:
                        out["failed"] += 1
                elif self._push_decision(shard, ltxid,
                                         Command.ABORT_PREPARED):
                    self.stats.presumed_aborts += 1
                    out["aborted"] += 1
                else:
                    out["failed"] += 1
        self.stats.in_doubt_resolved += out["committed"] + out["aborted"]
        if out["committed"]:
            # freshly landed commit decisions must surface in the next
            # global snapshot (the crash sweep verifies right after this)
            self._invalidate_snapshot_ts()
        return out

    # -- monitoring ----------------------------------------------------------

    def command_stats(self) -> tuple:
        """Per-command counters in :mod:`repro.db.monitor` shape."""
        from repro.db.monitor import CommandStat

        out = []
        for name, c in sorted(self._commands.items()):
            mean = c.total_wall / c.calls if c.calls else 0.0
            out.append(CommandStat(
                command=name, calls=c.calls, ok=c.ok, errors=c.errors,
                shed=0, mean_wall_usec=round(mean * 1e6, 1),
                max_wall_usec=round(c.max_wall * 1e6, 1)))
        return tuple(out)

    def cluster_payload(self) -> dict:
        """The ``cluster`` section of STATS / SNAPSHOT responses."""
        with self._snap_mu:
            snapshot_ts = self._snapshot_ts
            straddles = len(self._straddles)
            commit_floor = self._commit_floor
        shards = []
        total_in_doubt = 0
        for i, (host, port) in enumerate(self.shard_addrs):
            entry: dict = {"shard": i, "host": host, "port": port,
                           "alive": False, "txns": {},
                           "closed_ts": None, "begin_at": None,
                           "snapshot_lag": None}
            try:
                stats = self.pool.call(Command.STATS, endpoint=i)
            except Exception:
                pass
            else:
                entry["alive"] = True
                entry["txns"] = stats.get("engine", {}).get("txns", {})
                total_in_doubt += entry["txns"].get("in_doubt", 0)
                # watermark observability (per shard): the shard's closed
                # timestamp, how many snapshots were pinned on it, and how
                # far its watermark runs ahead of the global read
                # timestamp currently served from the cache
                entry["closed_ts"] = entry["txns"].get("closed_ts")
                entry["begin_at"] = entry["txns"].get("begin_at")
                if (snapshot_ts is not None
                        and entry["closed_ts"] is not None):
                    entry["snapshot_lag"] = entry["closed_ts"] - snapshot_ts
            shards.append(entry)
        return {
            "shards": shards,
            "in_doubt": total_in_doubt,
            "snapshot_ts": snapshot_ts,
            "straddle_windows": straddles,
            "commit_floor": commit_floor,
            "in_doubt_1pc": len(self._in_doubt_1pc),
            "per_shard_snapshots": self.config.per_shard_snapshots,
            "pending_decisions": len(
                self.coordinator_log.pending_decisions()),
            "router": self.stats.as_dict(),
            "endpoints": self.pool.endpoints_health(),
        }

    def stats_payload(self) -> dict:
        """The STATS command's response body (router edition)."""
        return {
            "uptime_sec": round(time.monotonic() - self._started_monotonic,
                                3),
            "in_flight": self._executing,
            "draining": self._draining,
            "sessions": {"live": self.sessions.count(),
                         "in_flight_txns": self.sessions.in_flight_txns(),
                         **self.sessions.stats.as_dict()},
            "router": self.stats.as_dict(),
            "cluster": self.cluster_payload(),
            "coordinator": {
                "decisions_logged": self.coordinator_log.decisions_logged,
                "ends_logged": self.coordinator_log.ends_logged,
            },
        }

    # -- command handlers ----------------------------------------------------

    async def _cmd_ping(self, _session: Session, args: tuple) -> str:
        def work() -> str:
            for shard in range(len(self.shard_addrs)):
                self.pool.call(Command.PING, endpoint=shard)
            return "pong"
        return await self._run(work)

    async def _cmd_begin(self, session: Session, args: tuple) -> int:
        if len(args) == 1:
            (serializable,) = args
            at_ts = None
        elif len(args) == 2:
            serializable, at_ts = args
            if at_ts is not None and (isinstance(at_ts, bool)
                                      or not isinstance(at_ts, int)):
                raise ProtocolError(f"expected at_ts, got {at_ts!r}")
        else:
            raise ProtocolError(
                f"BEGIN expects 1 or 2 argument(s), got {len(args)}")
        if serializable:
            # Satellite: never silently downgrade SSI to SI.  Cross-shard
            # rw-antidependency tracking would need the shards to exchange
            # SIREAD locks; until that exists the honest answer is a typed
            # wire error the client sees immediately at BEGIN.
            raise ProtocolError(
                "serializable (SSI) transactions are not supported across "
                "shards: rw-antidependency tracking is per-engine and the "
                "router cannot combine it; run serializable work against a "
                "single shard/server, or use the default snapshot "
                "isolation (cluster-wide consistent snapshot)")
        if at_ts is None and not self.config.per_shard_snapshots:
            at_ts = self._cached_snapshot_ts()
            if at_ts is None:
                at_ts = await self._run(self._refresh_snapshot_ts)
        gtxn = GlobalTxn(self._allocate_gtxid(), bool(serializable),
                         read_ts=at_ts)
        if at_ts is not None:
            self.stats.begins_at_ts += 1
        self._open[gtxn.txid] = gtxn
        session.register(gtxn)
        self.stats.gtxns_begun += 1
        return gtxn.txid

    async def _cmd_commit(self, session: Session, args: tuple) -> None:
        (txid,) = args
        gtxn = self._claim_gtxn(session, txid)
        try:
            await self._run(lambda: self._commit_job(gtxn))
        finally:
            if gtxn.phase != "active":
                session.forget(gtxn.txid)

    async def _cmd_abort(self, session: Session, args: tuple) -> None:
        (txid,) = args
        gtxn = self._claim_gtxn(session, txid)
        try:
            await self._run(lambda: self._abort_job(gtxn))
        finally:
            if gtxn.phase != "active":
                session.forget(gtxn.txid)

    async def _cmd_create_table(self, _session: Session,
                                args: tuple) -> None:
        def work() -> None:
            for shard in range(len(self.shard_addrs)):
                self.pool.call(Command.CREATE_TABLE, *args, endpoint=shard)
        return await self._run(work)

    async def _cmd_insert(self, session: Session, args: tuple) -> int:
        txid, table, row = args
        gtxn = self._claim_gtxn(session, txid)

        def work() -> int:
            shard = self.shard_map.place()
            st = self._shard_txn(gtxn, shard)
            lvid = self.pool.request(st.conn, Command.INSERT, st.ltxid,
                                     table, row)
            st.writes += 1
            return self.shard_map.to_global(shard, self._as_gvid(lvid))
        return await self._run(work)

    async def _cmd_bulk_insert(self, session: Session,
                               args: tuple) -> tuple:
        txid, table, rows = args
        gtxn = self._claim_gtxn(session, txid)

        def work() -> tuple:
            shard = self.shard_map.place()
            st = self._shard_txn(gtxn, shard)
            lvids = self.pool.request(st.conn, Command.BULK_INSERT,
                                      st.ltxid, table, rows)
            st.writes += len(lvids)
            return tuple(self.shard_map.to_global(shard, self._as_gvid(v))
                         for v in lvids)
        return await self._run(work)

    def _routed_call(self, gtxn: GlobalTxn, ref: object, command: Command,
                     *args_after_ref: object,
                     before_ref: tuple = ()) -> tuple[int, object]:
        gvid = self._as_gvid(ref)
        shard = self.shard_map.shard_of(gvid)
        st = self._shard_txn(gtxn, shard)
        result = self.pool.request(st.conn, command, st.ltxid, *before_ref,
                                   self.shard_map.to_local(gvid),
                                   *args_after_ref)
        return shard, result

    async def _cmd_read(self, session: Session, args: tuple) -> object:
        txid, table, ref = args
        gtxn = self._claim_gtxn(session, txid)

        def work() -> object:
            _shard, row = self._routed_call(gtxn, ref, Command.READ,
                                            before_ref=(table,))
            return row
        return await self._run(work)

    async def _cmd_update(self, session: Session, args: tuple) -> int:
        txid, table, ref, row = args
        gtxn = self._claim_gtxn(session, txid)

        def work() -> int:
            shard, lref = self._routed_call(gtxn, ref, Command.UPDATE, row,
                                            before_ref=(table,))
            gtxn.shards[shard].writes += 1
            return self.shard_map.to_global(shard, self._as_gvid(lref))
        return await self._run(work)

    async def _cmd_delete(self, session: Session, args: tuple) -> None:
        txid, table, ref = args
        gtxn = self._claim_gtxn(session, txid)

        def work() -> None:
            shard, _none = self._routed_call(gtxn, ref, Command.DELETE,
                                             before_ref=(table,))
            gtxn.shards[shard].writes += 1
        return await self._run(work)

    def _fanout_pairs(self, gtxn: GlobalTxn, command: Command,
                      *args: object) -> tuple:
        """Run a txn-scoped read on every shard; merge translated pairs.

        Results are ``(ref, row)`` pairs on every shard; the merge
        translates refs to global VIDs and sorts by them, so the merged
        order is deterministic regardless of shard count.
        """
        started = time.monotonic()
        merged: list[tuple] = []
        for shard in range(len(self.shard_addrs)):
            st = self._shard_txn(gtxn, shard)
            pairs = self.pool.request(st.conn, command, st.ltxid, *args)
            merged.extend(self._translate_pairs(shard, pairs))
        merged.sort(key=lambda pair: pair[0])
        self.stats.note_fanout(command.name, time.monotonic() - started)
        return tuple(merged)

    async def _cmd_lookup(self, session: Session, args: tuple) -> tuple:
        txid, table, index, key = args
        gtxn = self._claim_gtxn(session, txid)
        return await self._run(
            lambda: self._fanout_pairs(gtxn, Command.LOOKUP, table, index,
                                       key))

    async def _cmd_range_lookup(self, session: Session,
                                args: tuple) -> tuple:
        txid, table, index, lo, hi = args
        gtxn = self._claim_gtxn(session, txid)
        return await self._run(
            lambda: self._fanout_pairs(gtxn, Command.RANGE_LOOKUP, table,
                                       index, lo, hi))

    async def _cmd_scan(self, session: Session, args: tuple) -> tuple:
        txid, table = args
        gtxn = self._claim_gtxn(session, txid)
        return await self._run(
            lambda: self._fanout_pairs(gtxn, Command.SCAN, table))

    async def _cmd_scan_batch(self, session: Session, args: tuple) -> tuple:
        txid, table, columns, where, after, limit = args
        gtxn = self._claim_gtxn(session, txid)

        def work() -> tuple:
            # The wire cursor is opaque to clients (passed back verbatim),
            # so the router nests the shard's own cursor in a
            # (shard, local_cursor) pair and streams shards in order.
            if after is None:
                shard, local_after = 0, None
            elif (isinstance(after, tuple) and len(after) == 2
                    and isinstance(after[0], int)
                    and 0 <= after[0] < len(self.shard_addrs)):
                shard, local_after = after
            else:
                raise ProtocolError(f"bad cluster scan cursor: {after!r}")
            st = self._shard_txn(gtxn, shard)
            rows, local_cursor = self.pool.request(
                st.conn, Command.SCAN_BATCH, st.ltxid, table, columns,
                where, local_after, limit)
            translated = tuple(self._translate_pairs(shard, rows))
            if local_cursor is not None:
                return translated, (shard, local_cursor)
            if shard + 1 < len(self.shard_addrs):
                return translated, (shard + 1, None)
            return translated, None
        return await self._run(work)

    async def _cmd_aggregate(self, session: Session,
                             args: tuple) -> object:
        txid, table, op, column, where = args
        gtxn = self._claim_gtxn(session, txid)

        def work() -> object:
            started = time.monotonic()
            parts = []
            for shard in range(len(self.shard_addrs)):
                st = self._shard_txn(gtxn, shard)
                parts.append(self.pool.request(
                    st.conn, Command.AGGREGATE, st.ltxid, table, op,
                    column, where))
            self.stats.note_fanout(Command.AGGREGATE.name,
                                   time.monotonic() - started)
            if op == "count":
                return sum(parts)
            seen = [p for p in parts if p is not None]
            if not seen:
                return None
            if op == "sum":
                return sum(seen)
            if op == "min":
                return min(seen)
            if op == "max":
                return max(seen)
            raise ProtocolError(f"unknown aggregate op {op!r}")
        return await self._run(work)

    async def _cmd_scan_vid_range(self, session: Session,
                                  args: tuple) -> tuple:
        txid, table, lo, hi = args
        gtxn = self._claim_gtxn(session, txid)

        def work() -> tuple:
            started = time.monotonic()
            merged: list[tuple] = []
            for shard, llo, lhi in self.shard_map.split_range(lo, hi):
                st = self._shard_txn(gtxn, shard)
                pairs = self.pool.request(st.conn, Command.SCAN_VID_RANGE,
                                          st.ltxid, table, llo, lhi)
                merged.extend(self._translate_pairs(shard, pairs))
            merged.sort(key=lambda pair: pair[0])
            self.stats.note_fanout(Command.SCAN_VID_RANGE.name,
                                   time.monotonic() - started)
            return tuple(merged)
        return await self._run(work)

    async def _cmd_tick(self, _session: Session, args: tuple) -> None:
        def work() -> None:
            for shard in range(len(self.shard_addrs)):
                self.pool.call(Command.TICK, endpoint=shard)
        return await self._run(work)

    async def _cmd_maintenance(self, _session: Session,
                               args: tuple) -> dict:
        def work() -> dict:
            merged: dict[str, dict[str, int]] = {}
            for shard in range(len(self.shard_addrs)):
                report = self.pool.call(Command.MAINTENANCE, endpoint=shard)
                for table, summary in report.items():
                    into = merged.setdefault(table, {})
                    for key, value in summary.items():
                        into[key] = into.get(key, 0) + int(value)
            return merged
        return await self._run(work)

    async def _cmd_snapshot(self, _session: Session, args: tuple) -> dict:
        def work() -> dict:
            merged: dict | None = None
            for shard in range(len(self.shard_addrs)):
                snap = self.pool.call(Command.SNAPSHOT, endpoint=shard)
                if merged is None:
                    merged = dict(snap)
                    merged["tables"] = []
                else:
                    for key, value in snap.items():
                        if isinstance(value, (int, float)) and not (
                                isinstance(value, bool)):
                            if key == "sim_time_sec":
                                merged[key] = max(merged[key], value)
                            elif key == "buffer_hit_ratio":
                                merged[key] = (merged[key] + value) / 2
                            elif key == "write_amplification":
                                merged[key] = max(merged[key], value)
                            else:
                                merged[key] = merged.get(key, 0) + value
                for table in snap.get("tables", ()):
                    entry = dict(table)
                    entry["name"] = f"s{shard}/{entry.get('name', '?')}"
                    merged["tables"].append(entry)
            assert merged is not None
            merged["tables"] = tuple(merged["tables"])
            merged["commands"] = tuple(
                dataclasses.asdict(cs) for cs in self.command_stats())
            merged["cluster"] = self.cluster_payload()
            return merged
        return await self._run(work)

    async def _cmd_stats(self, _session: Session, args: tuple) -> dict:
        return await self._run(self.stats_payload)

    async def _cmd_clock_now(self, _session: Session, args: tuple) -> int:
        def work() -> int:
            return max(self.pool.call(Command.CLOCK_NOW, endpoint=s)
                       for s in range(len(self.shard_addrs)))
        return await self._run(work)

    async def _cmd_clock_advance(self, _session: Session,
                                 args: tuple) -> int:
        (usec,) = args

        def work() -> int:
            return max(self.pool.call(Command.CLOCK_ADVANCE, usec,
                                      endpoint=s)
                       for s in range(len(self.shard_addrs)))
        return await self._run(work)

    async def _cmd_clock_advance_to(self, _session: Session,
                                    args: tuple) -> int:
        (usec,) = args

        def work() -> int:
            return max(self.pool.call(Command.CLOCK_ADVANCE_TO, usec,
                                      endpoint=s)
                       for s in range(len(self.shard_addrs)))
        return await self._run(work)

    async def _cmd_txn_status(self, _session: Session, args: tuple) -> str:
        """The fate of a *global* txid, with presumed-abort semantics."""
        (gtxid,) = args
        if not isinstance(gtxid, int) or isinstance(gtxid, bool):
            raise ProtocolError(f"expected txid, got {gtxid!r}")

        def work() -> str:
            fate = self._fates.get(gtxid)
            if fate == "unknown":
                return self._late_resolve_1pc(gtxid)
            if fate is not None:
                return fate
            if gtxid in self._open:
                return "active"
            if self.coordinator_log.decided_commit(gtxid):
                return "committed"
            with self._gtxid_mu:
                allocated = gtxid < self._next_gtxid
            if allocated and gtxid > 0:
                # no decision logged for an allocated gtxid: presumed abort
                return "aborted"
            return "unknown"
        return await self._run(work)

    async def _cmd_closed_ts(self, _session: Session, args: tuple) -> int:
        """Cluster edition of CLOSED_TS: the global read timestamp.

        With no operand, refreshes (if stale) and returns the cluster-wide
        read timestamp — the min over shard watermarks after ratcheting.
        With a timestamp operand, ratchets *every* shard to at least it
        first, so an external coordinator can align this cluster's
        timestamp domain with another's.
        """
        if args:
            (target,) = args
            if isinstance(target, bool) or not isinstance(target, int):
                raise ProtocolError(f"expected timestamp, got {target!r}")

            def ratchet() -> int:
                for shard in range(len(self.shard_addrs)):
                    self.pool.call(Command.CLOSED_TS, target, endpoint=shard)
                self._invalidate_snapshot_ts()
                return self._refresh_snapshot_ts()
            return await self._run(ratchet)
        ts = self._cached_snapshot_ts()
        if ts is None:
            ts = await self._run(self._refresh_snapshot_ts)
        return ts

    async def _cmd_shutdown(self, _session: Session, args: tuple) -> None:
        return None
