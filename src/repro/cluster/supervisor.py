"""The shard supervisor: N independent engine+server shards, one handle.

Each shard is a complete single-node stack — its own simulated flash
device, WAL, transaction manager and :class:`~repro.server.DatabaseServer`
— listening on its own port.  Shards share *nothing*; the only thing
binding them into a cluster is the router's arithmetic shard map and the
2PC protocol.

Two modes:

* ``thread`` (default) — every shard runs in-process on its own
  background event-loop thread.  This is what tests and the shard-fault
  sweep use, because it supports **crash/restart**: :meth:`kill_shard`
  stops the server and drops the shard's volatile state
  (:func:`repro.db.recovery.crash`), :meth:`restart_shard` recovers the
  shard from its WAL + sealed pages on the *same port*.  Prepared (2PC
  in-doubt) transactions survive the round trip.
* ``process`` — every shard is a ``repro serve`` subprocess
  (``repro cluster start``): real OS isolation, one GIL per shard.  The
  simulated flash device lives in the subprocess's memory, so a killed
  process loses its shard's data — process mode is for topology/load
  exploration, not crash experiments.
"""

from __future__ import annotations

import contextlib
import os
import signal as _signal
import socket
import subprocess
import sys
import time
from dataclasses import dataclass
from pathlib import Path


@dataclass(frozen=True)
class SupervisorConfig:
    """How many shards to run and how each one's server is tuned."""

    shards: int = 2
    host: str = "127.0.0.1"
    mode: str = "thread"          # "thread" | "process"
    #: pre-create the nine TPC-C tables on every shard
    tpcc: bool = False
    idle_timeout_sec: float = 60.0
    drain_timeout_sec: float = 5.0
    max_in_flight: int = 8

    def validate(self) -> None:
        """Raise on inconsistent settings."""
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.mode not in ("thread", "process"):
            raise ValueError(f"unknown mode {self.mode!r}")


def _free_port(host: str) -> int:
    with socket.socket() as sock:
        sock.bind((host, 0))
        return sock.getsockname()[1]


class ShardSupervisor:
    """Launches, probes, kills, restarts and stops a set of shards."""

    def __init__(self, config: SupervisorConfig | None = None) -> None:
        self.config = config or SupervisorConfig()
        self.config.validate()
        self.addresses: list[tuple[str, int]] = []
        self._servers: list = []       # thread mode: DatabaseServer
        self._dbs: list = []           # thread mode: Database
        self._procs: list = []         # process mode: subprocess.Popen
        self._started = False

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> list[tuple[str, int]]:
        """Bring up every shard; returns their addresses in shard order."""
        if self._started:
            return self.addresses
        if self.config.mode == "thread":
            self._start_threads()
        else:
            self._start_processes()
        self._started = True
        return self.addresses

    def _start_threads(self) -> None:
        from repro.db.database import Database, EngineKind
        from repro.server import DatabaseServer

        for _ in range(self.config.shards):
            db = Database.on_flash(EngineKind.SIASV)
            if self.config.tpcc:
                from repro.workload.tpcc_schema import create_tpcc_tables
                create_tpcc_tables(db)
            server = DatabaseServer(db, self._server_config(port=0))
            address = server.start_in_background()
            self._dbs.append(db)
            self._servers.append(server)
            self.addresses.append(address)

    def _server_config(self, port: int, recover: bool = False):
        from repro.server import ServerConfig

        return ServerConfig(
            host=self.config.host, port=port,
            max_in_flight=self.config.max_in_flight,
            idle_timeout_sec=self.config.idle_timeout_sec,
            drain_timeout_sec=self.config.drain_timeout_sec,
            recover_on_start=recover)

    def _start_processes(self) -> None:
        src_root = Path(__file__).resolve().parents[2]
        env = dict(os.environ)
        env["PYTHONPATH"] = (str(src_root) + os.pathsep
                             + env.get("PYTHONPATH", ""))
        for _ in range(self.config.shards):
            port = _free_port(self.config.host)
            argv = [sys.executable, "-m", "repro", "serve",
                    "--host", self.config.host, "--port", str(port),
                    "--engine", "sias-v",
                    "--idle-timeout", str(self.config.idle_timeout_sec),
                    "--drain-timeout", str(self.config.drain_timeout_sec)]
            if self.config.tpcc:
                argv.append("--tpcc")
            proc = subprocess.Popen(argv, env=env,
                                    stdout=subprocess.DEVNULL,
                                    stderr=subprocess.DEVNULL)
            self._procs.append(proc)
            self.addresses.append((self.config.host, port))
        for shard in range(self.config.shards):
            self._wait_listening(shard)

    def _wait_listening(self, shard: int, timeout_sec: float = 15.0) -> None:
        host, port = self.addresses[shard]
        deadline = time.monotonic() + timeout_sec
        while time.monotonic() < deadline:
            if self.alive(shard):
                return
            if (self.config.mode == "process"
                    and self._procs[shard].poll() is not None):
                raise RuntimeError(
                    f"shard {shard} exited with "
                    f"{self._procs[shard].returncode} before listening")
            time.sleep(0.05)
        raise TimeoutError(f"shard {shard} ({host}:{port}) did not start")

    def stop(self) -> None:
        """Stop every shard cleanly (graceful drain on each)."""
        if self.config.mode == "thread":
            for server in self._servers:
                if server is not None:
                    server.stop_in_background()
            for db in self._dbs:
                with contextlib.suppress(Exception):
                    db.shutdown()
        else:
            for proc in self._procs:
                if proc.poll() is None:
                    proc.send_signal(_signal.SIGTERM)
            for proc in self._procs:
                with contextlib.suppress(subprocess.TimeoutExpired):
                    proc.wait(timeout=10.0)
                if proc.poll() is None:
                    proc.kill()
                    proc.wait(timeout=5.0)
        self._started = False

    # -- probing -------------------------------------------------------------

    def alive(self, shard: int) -> bool:
        """Whether the shard's port currently accepts connections."""
        host, port = self.addresses[shard]
        try:
            with socket.create_connection((host, port), timeout=0.5):
                return True
        except OSError:
            return False

    def status(self) -> list[dict]:
        """One dict per shard: address, mode, liveness."""
        return [{"shard": i, "host": h, "port": p, "mode": self.config.mode,
                 "alive": self.alive(i)}
                for i, (h, p) in enumerate(self.addresses)]

    # -- fault injection (thread mode) ---------------------------------------

    def kill_shard(self, shard: int) -> None:
        """Take a shard down and wipe its volatile state (power loss).

        The server stops (a shard between transactions drains instantly —
        prepared 2PC transactions are session-free and never block the
        drain), then :func:`repro.db.recovery.crash` drops every volatile
        structure, exactly as the crash-sweep harness does.  Durable state
        (WAL, sealed pages) survives for :meth:`restart_shard`.
        """
        if self.config.mode != "thread":
            proc = self._procs[shard]
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=5.0)
            return
        from repro.db.recovery import crash

        server = self._servers[shard]
        if server is not None:
            server.stop_in_background()
            self._servers[shard] = None
        crash(self._dbs[shard])

    def restart_shard(self, shard: int):
        """Bring a killed shard back on its old port, recovering first.

        Returns the :class:`~repro.db.recovery.RecoveryReport` (thread
        mode) so callers can assert on in-doubt counts.
        """
        host, port = self.addresses[shard]
        if self.config.mode != "thread":
            self._respawn_process(shard)
            return None
        from repro.server import DatabaseServer

        server = DatabaseServer(self._dbs[shard],
                                self._server_config(port=port,
                                                    recover=True))
        server.start_in_background()
        self._servers[shard] = server
        return server.recovery_report

    def _respawn_process(self, shard: int) -> None:
        host, port = self.addresses[shard]
        src_root = Path(__file__).resolve().parents[2]
        env = dict(os.environ)
        env["PYTHONPATH"] = (str(src_root) + os.pathsep
                             + env.get("PYTHONPATH", ""))
        argv = [sys.executable, "-m", "repro", "serve",
                "--host", host, "--port", str(port), "--engine", "sias-v"]
        if self.config.tpcc:
            argv.append("--tpcc")
        self._procs[shard] = subprocess.Popen(
            argv, env=env, stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL)
        self._wait_listening(shard)

    # -- direct access (thread mode, for tests and the sweep) ----------------

    def database(self, shard: int):
        """The shard's in-process :class:`Database` (thread mode only)."""
        if self.config.mode != "thread":
            raise RuntimeError("databases are in-process only in "
                               "thread mode")
        return self._dbs[shard]

    def server(self, shard: int):
        """The shard's in-process server (thread mode only)."""
        if self.config.mode != "thread":
            raise RuntimeError("servers are in-process only in thread mode")
        return self._servers[shard]

    def __enter__(self) -> "ShardSupervisor":
        self.start()
        return self

    def __exit__(self, *_exc) -> None:
        self.stop()
