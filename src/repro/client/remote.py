"""``RemoteDatabase``: the :class:`Database` facade over a live socket.

Method-for-method compatible with the in-process
:class:`~repro.db.database.Database` surface the workloads use —
``begin/commit/abort``, ``insert/bulk_insert/read/update/delete``,
``lookup/range_lookup/scan/scan_vid_range``, ``tick/maintenance``,
``run_in_txn`` and a ``clock`` — so :class:`~repro.workload.driver.
TpccDriver`, :class:`~repro.workload.tpcc_data.TpccLoader` and
``create_tpcc_tables`` run unchanged against a server.

Transactions are pinned to one pooled connection for their whole life:
server-side transaction state is per-session (per-connection), and the pin
is also what makes the server's disconnect semantics meaningful — if this
process dies, the connection dies, and the server aborts the transaction.
Non-transactional commands (clock, tick, snapshot, stats, DDL) use any
pooled connection.
"""

from __future__ import annotations

import time
from typing import Callable, Iterator

from repro.common.errors import (
    AmbiguousResultError,
    CircuitOpenError,
    CommitUncertainError,
)
from repro.client.connection import ClientConnection
from repro.client.pool import CircuitBreaker, ConnectionPool, RetryPolicy
from repro.db.catalog import IndexDef
from repro.db.schema import Schema
from repro.server.protocol import Command
from repro.txn.manager import TxnPhase


class RemoteTransaction:
    """Client-side handle of one server-side transaction.

    Mirrors the :class:`~repro.txn.manager.Transaction` attributes the
    workloads touch (``txid``, ``serializable``, ``phase``); the pinned
    connection is an implementation detail of the pin-per-txn contract.
    """

    __slots__ = ("txid", "serializable", "phase", "_conn")

    def __init__(self, txid: int, serializable: bool,
                 conn: ClientConnection) -> None:
        self.txid = txid
        self.serializable = serializable
        self.phase = TxnPhase.ACTIVE
        self._conn = conn

    def __repr__(self) -> str:
        return (f"RemoteTransaction(txid={self.txid}, "
                f"phase={self.phase.value})")


def _schema_wire(schema: Schema) -> tuple:
    return tuple((c.name, c.type.value) for c in schema.columns)


def _indexes_wire(indexes: list[IndexDef] | None) -> tuple:
    return tuple((d.name, d.columns, d.unique, d.kind.value)
                 for d in indexes or [])


class RemoteClock:
    """Proxy of the server's simulated clock (the driver's timebase)."""

    def __init__(self, call) -> None:
        self._call = call

    @property
    def now(self) -> int:
        """Server-side simulated time in microseconds."""
        return self._call(Command.CLOCK_NOW)

    @property
    def now_sec(self) -> float:
        """Server-side simulated time in seconds."""
        return self.now / 1_000_000

    def advance(self, usec: int) -> int:
        """Advance the server's simulated clock; returns the new time."""
        return self._call(Command.CLOCK_ADVANCE, usec)

    def advance_to(self, usec: int) -> int:
        """Advance the server's clock to at least ``usec``."""
        return self._call(Command.CLOCK_ADVANCE_TO, usec)


class RemoteDatabase:
    """A pooled, retrying client presenting the ``Database`` facade."""

    def __init__(self, host: str, port: int, pool_size: int = 4,
                 retry: RetryPolicy | None = None,
                 request_timeout_sec: float = 60.0,
                 breaker: CircuitBreaker | None = None,
                 deadline_ms: int | None = None,
                 chaos: object | None = None,
                 replicas: list[tuple[str, int]] | None = None) -> None:
        endpoints = [(host, port)] + list(replicas or [])
        self.pool = ConnectionPool(size=pool_size, retry=retry,
                                   request_timeout_sec=request_timeout_sec,
                                   breaker=breaker, deadline_ms=deadline_ms,
                                   chaos=chaos, endpoints=endpoints)
        #: endpoint index writes and control-plane calls are pinned to;
        #: :meth:`failover_to` repoints it after a promotion
        self._primary = 0
        self._replica_rr = 0
        self.clock = RemoteClock(self._call)

    def _call(self, command: Command, *args: object, **kwargs) -> object:
        """A pooled one-shot call pinned to the primary endpoint."""
        return self.pool.call(command, *args, endpoint=self._primary,
                              **kwargs)

    # -- replica routing / failover ------------------------------------------

    @property
    def replica_endpoints(self) -> list[int]:
        """Endpoint indexes currently acting as read replicas."""
        return [i for i in range(len(self.pool.endpoints))
                if i != self._primary]

    def failover_to(self, endpoint_index: int) -> None:
        """Repoint writes at a promoted replica's endpoint.

        The old primary's endpoint becomes a (presumed dead or fenced)
        replica entry; its circuit breaker keeps it from being retried
        aggressively.
        """
        if not 0 <= endpoint_index < len(self.pool.endpoints):
            raise ValueError(
                f"endpoint index {endpoint_index} out of range "
                f"(have {len(self.pool.endpoints)})")
        self._primary = endpoint_index

    def _read_endpoint(self) -> int:
        """Round-robin over the replica endpoints (primary if none)."""
        replicas = self.replica_endpoints
        if not replicas:
            return self._primary
        self._replica_rr = (self._replica_rr + 1) % len(replicas)
        return replicas[self._replica_rr]

    @classmethod
    def connect(cls, host: str, port: int,
                ready_timeout_sec: float = 10.0,
                **kwargs) -> "RemoteDatabase":
        """Build a client and block until the server answers a ping."""
        remote = cls(host, port, **kwargs)
        remote.wait_ready(ready_timeout_sec)
        return remote

    def wait_ready(self, timeout_sec: float = 10.0) -> None:
        """Ping until the server answers (it may still be booting)."""
        deadline = time.monotonic() + timeout_sec
        while True:
            try:
                self.ping()
                return
            except (ConnectionError, OSError, CircuitOpenError):
                if time.monotonic() >= deadline:
                    raise
                time.sleep(0.05)

    # -- transactions --------------------------------------------------------

    def begin(self, serializable: bool = False,
              at_ts: int | None = None,
              read_only: bool = False) -> RemoteTransaction:
        """Start a server-side transaction pinned to one connection.

        ``at_ts`` pins the snapshot to an externally supplied *closed*
        read timestamp (see :meth:`closed_ts`); the wire request only
        grows the extra operand when one is given, so an old server
        keeps working as long as the feature is unused.

        ``read_only=True`` routes the transaction to a read replica when
        the client was built with ``replicas=`` (round-robin; falls back
        to the primary when none is reachable).  A replica pins the
        snapshot at its replay watermark — stale-bounded but never
        fractured — and refuses any write with the ``FENCED`` status.
        """
        endpoint = self._read_endpoint() if read_only else self._primary
        try:
            conn = self.pool.acquire(endpoint=endpoint)
        except (ConnectionError, OSError, CircuitOpenError):
            if endpoint == self._primary:
                raise
            # the chosen replica is unreachable: serve the read-only
            # transaction from the primary instead
            conn = self.pool.acquire(endpoint=self._primary)
        try:
            if at_ts is None:
                txid = self.pool.request(conn, Command.BEGIN, serializable)
            else:
                txid = self.pool.request(conn, Command.BEGIN, serializable,
                                         at_ts)
        except BaseException:
            self.pool.release(conn)
            raise
        return RemoteTransaction(txid, serializable, conn)

    def commit(self, txn: RemoteTransaction) -> None:
        """Commit; the pinned connection returns to the pool.

        If the connection dies after the commit request may have been
        sent, the outcome is genuinely unknown — the server may have
        committed and the ack was lost.  That is surfaced as
        :class:`~repro.common.errors.CommitUncertainError` (never blindly
        retried: a resend could double-apply); resolve the fate with
        :meth:`resolve_commit` on a fresh connection.
        """
        try:
            self.pool.request(txn._conn, Command.COMMIT, txn.txid)
            txn.phase = TxnPhase.COMMITTED
        except AmbiguousResultError as exc:
            self.pool.stats.uncertain_commits += 1
            raise CommitUncertainError(
                f"commit of txn {txn.txid} is uncertain (ack lost): {exc}",
                txid=txn.txid) from exc
        except CommitUncertainError as exc:
            # relayed as Status.AMBIGUOUS by a router that lost its shard
            # mid-commit: the fate is genuinely undecided downstream
            self.pool.stats.uncertain_commits += 1
            raise CommitUncertainError(
                f"commit of txn {txn.txid} is uncertain (fate unresolved "
                f"downstream): {exc}", txid=txn.txid) from exc
        except BaseException:
            # server-side commit failure (e.g. SSI abort) rolled it back
            txn.phase = TxnPhase.ABORTED
            raise
        finally:
            self._unpin(txn)

    def abort(self, txn: RemoteTransaction) -> None:
        """Roll back; the pinned connection returns to the pool.

        A transaction whose pinned connection is already gone (or dead)
        is settled locally: the server aborts the orphan itself on
        disconnect, and resending ``ABORT`` over a fresh connection would
        only hit a session that no longer owns the transaction.
        """
        if txn._conn is None or not txn._conn.connected:
            txn.phase = TxnPhase.ABORTED
            self._unpin(txn)
            return
        try:
            self.pool.request(txn._conn, Command.ABORT, txn.txid)
        finally:
            txn.phase = TxnPhase.ABORTED
            self._unpin(txn)

    def txn_status(self, txid: int) -> str:
        """The server-side fate of ``txid``.

        One of ``"committed"``, ``"aborted"``, ``"active"`` (still open
        somewhere) or ``"unknown"`` (never allocated).  Runs on a fresh
        pooled connection, so it works precisely when the transaction's
        own connection is dead.
        """
        return self._call(Command.TXN_STATUS, txid)

    def resolve_commit(self, txid: int, timeout_sec: float = 5.0,
                       poll_interval_sec: float = 0.02) -> str:
        """Resolve an uncertain commit to its final fate.

        ``"active"`` is transient after a dead connection — the server
        aborts the orphan when it notices the disconnect.  ``"unknown"``
        is transient too when the far side is a cluster router: a commit
        parked in doubt (its shard crashed mid-ack) resolves as soon as
        the shard's WAL recovery answers.  Both are polled through until
        the fate is final or ``timeout_sec`` elapses (returning the last
        observed status in that case).
        """
        deadline = time.monotonic() + timeout_sec
        while True:
            status = self.txn_status(txid)
            if (status not in ("active", "unknown")
                    or time.monotonic() >= deadline):
                return status
            time.sleep(poll_interval_sec)

    def _unpin(self, txn: RemoteTransaction) -> None:
        conn, txn._conn = txn._conn, None  # type: ignore[assignment]
        if conn is not None:
            self.pool.release(conn)

    def _txn_call(self, txn: RemoteTransaction, command: Command,
                  *args: object) -> object:
        if txn.phase is not TxnPhase.ACTIVE or txn._conn is None:
            raise ValueError(
                f"txn {txn.txid} is {txn.phase.value}, expected active")
        return self.pool.request(txn._conn, command, txn.txid, *args)

    def run_in_txn(self, fn: Callable[[RemoteTransaction], object],
                   serializable: bool = False) -> object:
        """Run ``fn`` in a remote transaction, committing on success."""
        txn = self.begin(serializable=serializable)
        try:
            result = fn(txn)
        except BaseException:
            if txn.phase is TxnPhase.ACTIVE:
                self.abort(txn)
            raise
        self.commit(txn)
        return result

    # -- schema --------------------------------------------------------------

    def create_table(self, name: str, schema: Schema,
                     indexes: list[IndexDef] | None = None) -> None:
        """Create a relation (accepts the same ``Schema``/``IndexDef``)."""
        self._call(Command.CREATE_TABLE, name, _schema_wire(schema),
                       _indexes_wire(indexes))

    # -- data operations -----------------------------------------------------

    def insert(self, txn: RemoteTransaction, table: str,
               row: tuple) -> object:
        """Insert a row; returns its item handle (VID or TID)."""
        return self._txn_call(txn, Command.INSERT, table, row)

    def bulk_insert(self, txn: RemoteTransaction, table: str,
                    rows: list[tuple]) -> list:
        """Load many rows in one round trip."""
        return list(self._txn_call(txn, Command.BULK_INSERT, table,
                                   tuple(rows)))

    def read(self, txn: RemoteTransaction, table: str,
             ref: object) -> tuple | None:
        """Visible row of an item handle (None if invisible or deleted)."""
        return self._txn_call(txn, Command.READ, table, ref)

    def update(self, txn: RemoteTransaction, table: str, ref: object,
               row: tuple) -> object:
        """Replace an item's row; returns the (possibly new) handle."""
        return self._txn_call(txn, Command.UPDATE, table, ref, row)

    def delete(self, txn: RemoteTransaction, table: str,
               ref: object) -> None:
        """Delete an item."""
        self._txn_call(txn, Command.DELETE, table, ref)

    def lookup(self, txn: RemoteTransaction, table: str, index_name: str,
               key: object) -> list[tuple]:
        """Exact-match index lookup."""
        return list(self._txn_call(txn, Command.LOOKUP, table, index_name,
                                   key))

    def range_lookup(self, txn: RemoteTransaction, table: str,
                     index_name: str, lo: object,
                     hi: object) -> list[tuple]:
        """Range index lookup (inclusive bounds)."""
        return list(self._txn_call(txn, Command.RANGE_LOOKUP, table,
                                   index_name, lo, hi))

    def scan(self, txn: RemoteTransaction, table: str,
             columns: list[str] | None = None,
             where: tuple | None = None,
             batch_size: int = 256) -> Iterator[tuple]:
        """Visible-rows scan, streamed in bitmap-filtered batches.

        ``columns``/``where`` push projection and a ``(column, op, value)``
        predicate to the server, which evaluates them in the vectorized
        page kernels — only surviving rows travel over the wire, at most
        ``batch_size`` per SCAN_BATCH frame.
        """
        cols = None if columns is None else tuple(columns)
        pred = None if where is None else tuple(where)
        cursor: object = None
        while True:
            rows, cursor = self._txn_call(txn, Command.SCAN_BATCH, table,
                                          cols, pred, cursor, batch_size)
            yield from rows
            if cursor is None:
                return

    def aggregate(self, txn: RemoteTransaction, table: str, op: str,
                  column: str | None = None,
                  where: tuple | None = None) -> object:
        """``count``/``sum``/``min``/``max``, folded server-side."""
        pred = None if where is None else tuple(where)
        return self._txn_call(txn, Command.AGGREGATE, table, op, column,
                              pred)

    def scan_vid_range(self, txn: RemoteTransaction, table: str, lo: int,
                       hi: int) -> list[tuple]:
        """Visible rows with ``lo <= VID < hi`` (SIAS-V only)."""
        return list(self._txn_call(txn, Command.SCAN_VID_RANGE, table, lo,
                                   hi))

    # -- background machinery / monitoring -----------------------------------

    def tick(self) -> None:
        """Advance the server's bgwriter/checkpointer."""
        self._call(Command.TICK)

    def maintenance(self) -> dict:
        """Run GC / VACUUM on every table; returns per-table summaries."""
        return self._call(Command.MAINTENANCE)

    def monitor_snapshot(self) -> dict:
        """The server's full :func:`repro.db.monitor.snapshot` as a dict."""
        return self._call(Command.SNAPSHOT)

    def server_stats(self) -> dict:
        """Admission-control, session and per-command service counters."""
        return self._call(Command.STATS)

    def replication_status(self) -> dict:
        """The server's replication health: role, epoch, slots, lag,
        resync and supervisor state (empty on a non-replicated node)."""
        return self.server_stats().get("replication", {})

    def closed_ts(self, ratchet_to: int | None = None) -> int:
        """The server's closed-timestamp watermark.

        Every timestamp at or below it is settled, so it is a valid
        ``at_ts`` for :meth:`begin`.  ``ratchet_to`` additionally pushes
        the server's txid space forward (never backwards) before reading
        the watermark — the cluster router's shard-side ratchet.
        """
        if ratchet_to is None:
            return self._call(Command.CLOSED_TS)
        return self._call(Command.CLOSED_TS, ratchet_to)

    def ping(self) -> str:
        """Liveness probe."""
        return self._call(Command.PING)

    def shutdown_server(self) -> None:
        """Ask the server to stop cleanly (it answers, then winds down)."""
        self._call(Command.SHUTDOWN)

    def close(self) -> None:
        """Close every pooled connection."""
        self.pool.close()

    def __enter__(self) -> "RemoteDatabase":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
