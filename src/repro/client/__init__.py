"""Synchronous client library for the ``repro`` wire protocol.

Public surface::

    from repro.client import RemoteDatabase

    remote = RemoteDatabase.connect("127.0.0.1", 7654)
    remote.create_table("accounts", schema, indexes=[...])
    ref = remote.run_in_txn(lambda t: remote.insert(t, "accounts", row))

``RemoteDatabase`` matches the in-process ``Database`` method signatures,
pins each transaction to one pooled connection, and transparently retries
``OVERLOADED`` sheds with exponential backoff.
"""

from repro.client.connection import ClientConnection
from repro.client.pool import ConnectionPool, PoolStats, RetryPolicy
from repro.client.remote import (
    RemoteClock,
    RemoteDatabase,
    RemoteTransaction,
)

__all__ = [
    "ClientConnection",
    "ConnectionPool",
    "PoolStats",
    "RemoteClock",
    "RemoteDatabase",
    "RemoteTransaction",
    "RetryPolicy",
]
