"""Synchronous client library for the ``repro`` wire protocol.

Public surface::

    from repro.client import RemoteDatabase

    remote = RemoteDatabase.connect("127.0.0.1", 7654)
    remote.create_table("accounts", schema, indexes=[...])
    ref = remote.run_in_txn(lambda t: remote.insert(t, "accounts", row))

``RemoteDatabase`` matches the in-process ``Database`` method signatures,
pins each transaction to one pooled connection, transparently retries
``OVERLOADED``/``DEADLINE_EXCEEDED`` sheds with exponential backoff, and
fails fast behind a per-endpoint :class:`CircuitBreaker` when the server
stops answering.  A commit whose ack is lost surfaces as
``CommitUncertainError`` and is resolved — never blindly retried — via
``RemoteDatabase.resolve_commit``.
"""

from repro.client.connection import ClientConnection
from repro.client.pool import (
    BreakerState,
    CircuitBreaker,
    ConnectionPool,
    PoolStats,
    RetryPolicy,
)
from repro.client.remote import (
    RemoteClock,
    RemoteDatabase,
    RemoteTransaction,
)

__all__ = [
    "BreakerState",
    "CircuitBreaker",
    "ClientConnection",
    "ConnectionPool",
    "PoolStats",
    "RemoteClock",
    "RemoteDatabase",
    "RemoteTransaction",
    "RetryPolicy",
]
