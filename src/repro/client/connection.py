"""One synchronous client connection: framing, request/response, errors.

A :class:`ClientConnection` is deliberately plain ``socket`` code — no
asyncio on the client side — so it works from scripts, the workload driver
and test harnesses without an event loop.  One request is in flight at a
time per connection; concurrency comes from the pool
(:mod:`repro.client.pool`), which leases one connection per caller.

Every response's echoed request id is checked against the request's, so a
desynchronised stream (dropped frame, crossed responses) surfaces as a
:class:`~repro.common.errors.ProtocolError` instead of silently returning
another command's payload.
"""

from __future__ import annotations

import socket

from repro.common.errors import AmbiguousResultError, ProtocolError
from repro.server.protocol import (
    Command,
    decode_response,
    encode_request,
    frame_length,
    raise_for_status,
)


class ClientConnection:
    """A blocking request/response channel to one ``repro`` server.

    ``chaos`` (a :class:`repro.server.chaos.ChaosPlan`) wraps the socket
    in the fault-injecting adapter; None — the default — keeps the plain
    socket, so the fault-free path has no wrapper in it at all.
    """

    def __init__(self, host: str, port: int,
                 connect_timeout_sec: float = 5.0,
                 request_timeout_sec: float = 60.0,
                 chaos: object | None = None) -> None:
        self.host = host
        self.port = port
        self.connect_timeout_sec = connect_timeout_sec
        self.request_timeout_sec = request_timeout_sec
        self.chaos = chaos
        self._sock: socket.socket | None = None
        self._next_request_id = 1

    # -- lifecycle -----------------------------------------------------------

    def connect(self) -> "ClientConnection":
        """Open the socket (no-op if already connected)."""
        if self._sock is None:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.connect_timeout_sec)
            sock.settimeout(self.request_timeout_sec)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            if self.chaos is not None:
                sock = self.chaos.wrap_socket(sock)
            self._sock = sock
        return self

    @property
    def connected(self) -> bool:
        """Whether the socket is (nominally) open."""
        return self._sock is not None

    def close(self) -> None:
        """Close the socket; in-flight server-side txns will be orphaned."""
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "ClientConnection":
        return self.connect()

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- request/response ----------------------------------------------------

    def request(self, command: Command, *args: object,
                deadline_ms: int | None = None) -> object:
        """Send one command and return its payload (raises on error status).

        ``deadline_ms`` is the remaining time budget the server may spend
        before starting the command (relative, so no clock sync needed).

        Failures *before* the request frame is attempted close the socket
        and raise plain :class:`ConnectionError` — nothing was sent, a
        retry is safe.  Failures at any point *after* the send began raise
        :class:`~repro.common.errors.AmbiguousResultError`: the server may
        or may not have executed the command (the lost-ack window), so the
        caller must resolve the fate (``TXN_STATUS``) before retrying
        anything non-idempotent.  Protocol-status errors map back to the
        library's exception hierarchy via
        :func:`repro.server.protocol.raise_for_status`.
        """
        if self._sock is None:
            self.connect()
        assert self._sock is not None
        request_id = self._next_request_id
        self._next_request_id += 1
        frame = encode_request(request_id, command, args,
                               deadline_ms=deadline_ms)
        attempted = False
        try:
            attempted = True
            self._sock.sendall(frame)
            header = self._recv_exact(4)
            body = self._recv_exact(frame_length(header))
        except (OSError, ConnectionError) as exc:
            self.close()
            if attempted:
                raise AmbiguousResultError(
                    f"{command.name} to {self.host}:{self.port} died after "
                    f"the request may have been sent: {exc}") from exc
            raise ConnectionError(
                f"{command.name} to {self.host}:{self.port} failed: {exc}"
            ) from exc
        echoed_id, status, payload = decode_response(body)
        if echoed_id != request_id:
            self.close()
            raise ProtocolError(
                f"response id {echoed_id} does not match request "
                f"{request_id}: stream desynchronised")
        raise_for_status(status, str(payload))
        return payload

    def _recv_exact(self, n: int) -> bytes:
        assert self._sock is not None
        chunks: list[bytes] = []
        remaining = n
        while remaining > 0:
            chunk = self._sock.recv(remaining)
            if not chunk:
                raise ConnectionError("server closed the connection")
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)
