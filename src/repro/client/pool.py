"""Connection pooling, retry policy and circuit breaking for the client.

The pool keeps up to ``size`` idle connections warm and hands them out one
per caller; when the free list is empty it *creates* an overflow connection
instead of blocking, because a single-threaded caller (the workload driver)
legitimately holds one leased connection per in-flight transaction — a
blocking pool would deadlock it.  Overflow connections are closed on
release once the free list is full again.

Retry semantics honour the server's backpressure contract: ``OVERLOADED``
and ``DEADLINE_EXCEEDED`` responses are shed *before* execution, so they
are always safe to retry with exponential backoff — even ``COMMIT``.
Connect-time failures retry the same way (the server may still be
booting).  A connection that dies *mid-request* is NOT retried unless the
command is session-free and read-only (``_IDEMPOTENT``) — the server may
or may not have executed it — so it surfaces as
:class:`~repro.common.errors.AmbiguousResultError` to the caller, whose
transaction is orphaned and will be aborted server-side (or, for a commit
in the lost-ack window, resolved via ``TXN_STATUS``).

The :class:`CircuitBreaker` sits in front of all of it: after
``failure_threshold`` consecutive retryable failures the endpoint is
presumed down and calls fail fast with
:class:`~repro.common.errors.CircuitOpenError` instead of burning a full
backoff schedule each; after ``reset_timeout_sec`` a single probe is let
through, and its outcome closes or re-opens the circuit.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable

from repro.common.errors import (
    AmbiguousResultError,
    CircuitOpenError,
    DeadlineExceededError,
    OverloadedError,
)
from repro.client.connection import ClientConnection
from repro.server.protocol import Command

# Session-free, read-only commands: re-executing one on a *fresh*
# connection after an ambiguous failure cannot double-apply anything,
# so ``call()`` retries them transparently.  Everything txn-scoped
# stays ambiguous — the session that owned the txid died with the
# connection, and only the caller knows what to do about it.
_IDEMPOTENT = frozenset({
    Command.PING, Command.TXN_STATUS, Command.STATS,
    Command.SNAPSHOT, Command.CLOCK_NOW,
})


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with **full jitter** for retryable failures.

    The backoff *ceiling* grows exponentially; the actual sleep is drawn
    uniformly from ``[0, ceiling]``.  Without jitter, every client shed by
    the same overload burst retries in lockstep and re-collides on every
    wave; full jitter spreads the retry storm across the whole window
    (the classic AWS "exponential backoff and jitter" result).

    ``rng`` takes any 0-arg callable returning floats in ``[0, 1)`` —
    inject ``random.Random(seed).random`` for deterministic tests, or set
    ``jitter=False`` to fall back to the bare exponential schedule.
    """

    max_attempts: int = 10
    base_delay_sec: float = 0.005
    max_delay_sec: float = 0.25
    multiplier: float = 2.0
    jitter: bool = True
    rng: Callable[[], float] = field(default=random.random, compare=False)

    def ceiling(self, attempt: int) -> float:
        """The capped exponential bound for retry number ``attempt``."""
        return min(self.max_delay_sec,
                   self.base_delay_sec * (self.multiplier ** attempt))

    def delay(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (0-based)."""
        bound = self.ceiling(attempt)
        if not self.jitter:
            return bound
        return self.rng() * bound


class BreakerState(Enum):
    """Where a :class:`CircuitBreaker` currently stands."""

    CLOSED = "closed"        # healthy: calls flow
    OPEN = "open"            # presumed down: calls fail fast
    HALF_OPEN = "half_open"  # cooling off: one probe in flight


class CircuitBreaker:
    """Consecutive-failure circuit breaker for one endpoint.

    CLOSED → OPEN after ``failure_threshold`` consecutive failures;
    OPEN → HALF_OPEN once ``reset_timeout_sec`` has passed, admitting
    exactly one probe; the probe's success closes the circuit, its
    failure re-opens it (and restarts the cooldown).  Thread-safe —
    several pool users may hit the same breaker.  ``clock`` is injectable
    (``time.monotonic``-shaped) so tests need not sleep through
    cooldowns.
    """

    def __init__(self, failure_threshold: int = 5,
                 reset_timeout_sec: float = 1.0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_timeout_sec < 0:
            raise ValueError("reset_timeout_sec must be >= 0")
        self.failure_threshold = failure_threshold
        self.reset_timeout_sec = reset_timeout_sec
        self._clock = clock
        self._lock = threading.Lock()
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_out = False
        #: times the breaker tripped CLOSED/HALF_OPEN → OPEN
        self.opened_total = 0

    @property
    def state(self) -> BreakerState:
        """Current state (OPEN reports HALF_OPEN once cooled down)."""
        with self._lock:
            if (self._state is BreakerState.OPEN
                    and self._cooled_down()):
                return BreakerState.HALF_OPEN
            return self._state

    def _cooled_down(self) -> bool:
        return self._clock() - self._opened_at >= self.reset_timeout_sec

    def allow(self) -> bool:
        """May a call proceed right now?  (Claims the half-open probe.)"""
        with self._lock:
            if self._state is BreakerState.CLOSED:
                return True
            if self._state is BreakerState.OPEN:
                if not self._cooled_down():
                    return False
                self._state = BreakerState.HALF_OPEN
                self._probe_out = True
                return True
            # HALF_OPEN: only one probe at a time
            if self._probe_out:
                return False
            self._probe_out = True
            return True

    def record_success(self) -> None:
        """A call completed: close the circuit, reset the count."""
        with self._lock:
            self._state = BreakerState.CLOSED
            self._consecutive_failures = 0
            self._probe_out = False

    def record_failure(self) -> None:
        """A call failed retryably: maybe trip the circuit open."""
        with self._lock:
            self._consecutive_failures += 1
            self._probe_out = False
            tripped = (self._state is BreakerState.HALF_OPEN
                       or self._consecutive_failures
                       >= self.failure_threshold)
            if tripped:
                if self._state is not BreakerState.OPEN:
                    self.opened_total += 1
                self._state = BreakerState.OPEN
                self._opened_at = self._clock()

    def as_dict(self) -> dict[str, object]:
        """Wire/telemetry-friendly view."""
        return {"state": self.state.value,
                "consecutive_failures": self._consecutive_failures,
                "opened_total": self.opened_total}


@dataclass
class PoolStats:
    """Pool effectiveness, retry and resilience counters."""

    created: int = 0
    reused: int = 0
    overflow_closed: int = 0
    overload_retries: int = 0
    #: server-side DEADLINE_EXCEEDED sheds that were retried
    deadline_retries: int = 0
    connect_retries: int = 0
    broken: int = 0
    #: calls refused locally because the circuit breaker was open
    circuit_rejections: int = 0
    #: commits whose ack was lost (resolved out-of-band via TXN_STATUS)
    uncertain_commits: int = 0
    #: idempotent commands re-run on a fresh connection after an
    #: ambiguous failure (see ``_IDEMPOTENT``)
    ambiguous_retries: int = 0


class ConnectionPool:
    """Thread-safe pool of :class:`ClientConnection` with retry-on-shed.

    ``deadline_ms`` is the pool's default per-call time budget (None —
    the default — sends no deadline); per-call values override it.  The
    budget spans the *whole* retry schedule of one logical call: each
    resend tells the server only the time remaining, and once the budget
    is spent the call fails client-side without another round trip.
    """

    def __init__(self, host: str | None = None, port: int | None = None,
                 size: int = 4,
                 retry: RetryPolicy | None = None,
                 connect_timeout_sec: float = 5.0,
                 request_timeout_sec: float = 60.0,
                 breaker: CircuitBreaker | None = None,
                 deadline_ms: int | None = None,
                 chaos: object | None = None,
                 endpoints: list[tuple[str, int]] | None = None) -> None:
        if size < 1:
            raise ValueError("pool size must be >= 1")
        if endpoints is None:
            if host is None or port is None:
                raise ValueError("either host+port or endpoints required")
            endpoints = [(host, port)]
        if not endpoints:
            raise ValueError("endpoints must not be empty")
        #: all addresses this pool can lease against; endpoint *index* is
        #: the stable handle used by ``acquire(endpoint=...)``
        self.endpoints: list[tuple[str, int]] = [(h, p)
                                                 for h, p in endpoints]
        self.host, self.port = self.endpoints[0]
        self.size = size
        self.retry = retry or RetryPolicy()
        self.connect_timeout_sec = connect_timeout_sec
        self.request_timeout_sec = request_timeout_sec
        first = breaker or CircuitBreaker()
        #: one breaker per endpoint: one down shard must not open the
        #: circuit for its healthy peers.  Extra endpoints inherit the
        #: first breaker's thresholds (and its injectable clock).
        self.breakers: list[CircuitBreaker] = [first] + [
            CircuitBreaker(first.failure_threshold,
                           first.reset_timeout_sec, first._clock)
            for _ in self.endpoints[1:]]
        self.deadline_ms = deadline_ms
        #: a single plan applies to every endpoint; a ``{index: plan}``
        #: dict faults selected endpoints only (shard-fault chaos)
        self.chaos = chaos
        self.stats = PoolStats()
        self._lock = threading.Lock()
        self._free: list[list[ClientConnection]] = [
            [] for _ in self.endpoints]
        self._rr = 0
        self._closed = False

    @property
    def breaker(self) -> CircuitBreaker:
        """The first endpoint's breaker (single-endpoint compatibility)."""
        return self.breakers[0]

    def _chaos_for(self, index: int) -> object | None:
        if isinstance(self.chaos, dict):
            return self.chaos.get(index)
        return self.chaos

    def _ordered(self, endpoint: int | None) -> list[int]:
        """Candidate endpoint indexes, healthiest first.

        A pinned ``endpoint`` is the only candidate.  Otherwise endpoints
        whose breaker is not OPEN come first, rotated round-robin so load
        spreads; OPEN ones trail (their cooldown may have elapsed, which
        ``CircuitBreaker.allow`` decides at dial time).
        """
        if endpoint is not None:
            if not 0 <= endpoint < len(self.endpoints):
                raise ValueError(f"unknown endpoint index {endpoint}")
            return [endpoint]
        n = len(self.endpoints)
        with self._lock:
            start = self._rr
            self._rr = (self._rr + 1) % n
        order = [(start + i) % n for i in range(n)]
        healthy = [i for i in order
                   if self.breakers[i].state is not BreakerState.OPEN]
        return healthy + [i for i in order if i not in healthy]

    # -- leasing -------------------------------------------------------------

    def acquire(self, endpoint: int | None = None) -> ClientConnection:
        """Lease a connection (reuses an idle one, else dials a new one).

        ``endpoint`` pins the lease to one address (the router's
        shard-targeted path); None picks health-aware round-robin across
        all endpoints.  Connect failures back off and retry per the
        policy, so a client racing a still-booting server converges
        instead of failing — and an unpinned retry moves on to the next
        endpoint.  When every candidate's circuit breaker is open the
        lease fails fast with :class:`CircuitOpenError` without touching
        the network.
        """
        candidates = self._ordered(endpoint)
        with self._lock:
            if self._closed:
                raise ConnectionError("pool is closed")
            for i in candidates:
                if self._free[i]:
                    self.stats.reused += 1
                    return self._free[i].pop()
        last_error: Exception | None = None
        for attempt in range(self.retry.max_attempts):
            index = None
            for i in candidates:
                if self.breakers[i].allow():
                    index = i
                    break
            if index is None:
                with self._lock:
                    self.stats.circuit_rejections += 1
                names = ", ".join(f"{h}:{p}"
                                  for h, p in (self.endpoints[i]
                                               for i in candidates))
                raise CircuitOpenError(
                    f"circuit open for {names} "
                    f"({self.breakers[candidates[0]].as_dict()})",
                    breaker=self.breakers[candidates[0]])
            host, port = self.endpoints[index]
            try:
                conn = ClientConnection(
                    host, port,
                    connect_timeout_sec=self.connect_timeout_sec,
                    request_timeout_sec=self.request_timeout_sec,
                    chaos=self._chaos_for(index)).connect()
                conn.endpoint_index = index
                with self._lock:
                    self.stats.created += 1
                self.breakers[index].record_success()
                return conn
            except (OSError, ConnectionError) as exc:
                last_error = exc
                self.breakers[index].record_failure()
                with self._lock:
                    self.stats.connect_retries += 1
                time.sleep(self.retry.delay(attempt))
        raise ConnectionError(
            f"could not connect to {self.endpoints[candidates[0]]} after "
            f"{self.retry.max_attempts} attempts: {last_error}")

    def release(self, conn: ClientConnection) -> None:
        """Return a leased connection (broken ones are discarded)."""
        index = getattr(conn, "endpoint_index", 0)
        if not conn.connected:
            with self._lock:
                self.stats.broken += 1
            return
        with self._lock:
            if not self._closed and len(self._free[index]) < self.size:
                self._free[index].append(conn)
                return
            self.stats.overflow_closed += 1
        conn.close()

    # -- calling -------------------------------------------------------------

    def request(self, conn: ClientConnection, command: Command,
                *args: object, deadline_ms: int | None = None) -> object:
        """One command on a *leased* connection, retrying only sheds.

        ``OVERLOADED`` and ``DEADLINE_EXCEEDED`` both mean the server
        rejected the command *before* executing it, so resending after
        backoff is always safe — even for non-idempotent commands inside
        a transaction.  An :class:`AmbiguousResultError` (the connection
        died after the send began) is never retried here: the command may
        have executed, and only the caller knows whether it is idempotent.
        """
        if deadline_ms is None:
            deadline_ms = self.deadline_ms
        expires = (None if deadline_ms is None
                   else time.monotonic() + deadline_ms / 1000.0)
        for attempt in range(self.retry.max_attempts):
            remaining_ms: int | None = None
            if expires is not None:
                remaining = expires - time.monotonic()
                if remaining <= 0:
                    raise DeadlineExceededError(
                        f"{command.name}: client-side deadline "
                        f"({deadline_ms}ms) spent across retries")
                remaining_ms = max(1, int(remaining * 1000))
            breaker = self.breakers[getattr(conn, "endpoint_index", 0)]
            try:
                result = conn.request(command, *args,
                                      deadline_ms=remaining_ms)
                breaker.record_success()
                return result
            except (OverloadedError, DeadlineExceededError) as exc:
                breaker.record_failure()
                with self._lock:
                    if isinstance(exc, OverloadedError):
                        self.stats.overload_retries += 1
                    else:
                        self.stats.deadline_retries += 1
                if attempt == self.retry.max_attempts - 1:
                    raise
                delay = self.retry.delay(attempt)
                if expires is not None:
                    delay = min(delay, max(0.0,
                                           expires - time.monotonic()))
                time.sleep(delay)
            except ConnectionError:
                breaker.record_failure()
                raise
        raise AssertionError("unreachable")

    def call(self, command: Command, *args: object,
             deadline_ms: int | None = None,
             endpoint: int | None = None) -> object:
        """Lease, run one command with retry, release.

        An :class:`AmbiguousResultError` (e.g. a pooled connection the
        server closed while draining) is retried on a *fresh* connection
        — but only for the session-free read-only commands in
        ``_IDEMPOTENT``; this is what lets ``resolve_commit`` poll
        ``TXN_STATUS`` right through the connection that just died.
        """
        for attempt in range(self.retry.max_attempts):
            conn = self.acquire(endpoint=endpoint)
            try:
                return self.request(conn, command, *args,
                                    deadline_ms=deadline_ms)
            except AmbiguousResultError:
                if (command not in _IDEMPOTENT
                        or attempt == self.retry.max_attempts - 1):
                    raise
                with self._lock:
                    self.stats.ambiguous_retries += 1
                time.sleep(self.retry.delay(attempt))
            finally:
                self.release(conn)
        raise AssertionError("unreachable")

    # -- lifecycle -----------------------------------------------------------

    def endpoints_health(self) -> list[dict[str, object]]:
        """Per-endpoint address + breaker view (router STATS / monitor)."""
        return [{"host": h, "port": p, **b.as_dict()}
                for (h, p), b in zip(self.endpoints, self.breakers)]

    def close(self) -> None:
        """Close every idle connection and refuse new leases."""
        with self._lock:
            self._closed = True
            free, self._free = self._free, [[] for _ in self.endpoints]
        for conns in free:
            for conn in conns:
                conn.close()

    def __enter__(self) -> "ConnectionPool":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
