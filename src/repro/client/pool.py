"""Connection pooling and retry policy for the synchronous client.

The pool keeps up to ``size`` idle connections warm and hands them out one
per caller; when the free list is empty it *creates* an overflow connection
instead of blocking, because a single-threaded caller (the workload driver)
legitimately holds one leased connection per in-flight transaction — a
blocking pool would deadlock it.  Overflow connections are closed on
release once the free list is full again.

Retry semantics honour the server's backpressure contract: ``OVERLOADED``
responses are shed *before* execution, so they are always safe to retry
with exponential backoff.  Connect-time failures retry the same way (the
server may still be booting).  A connection that dies *mid-request* is NOT
retried by default — the server may or may not have executed the command —
that error propagates to the caller, whose transaction is orphaned and
will be aborted server-side.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.common.errors import OverloadedError
from repro.client.connection import ClientConnection
from repro.server.protocol import Command


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with **full jitter** for retryable failures.

    The backoff *ceiling* grows exponentially; the actual sleep is drawn
    uniformly from ``[0, ceiling]``.  Without jitter, every client shed by
    the same overload burst retries in lockstep and re-collides on every
    wave; full jitter spreads the retry storm across the whole window
    (the classic AWS "exponential backoff and jitter" result).

    ``rng`` takes any 0-arg callable returning floats in ``[0, 1)`` —
    inject ``random.Random(seed).random`` for deterministic tests, or set
    ``jitter=False`` to fall back to the bare exponential schedule.
    """

    max_attempts: int = 10
    base_delay_sec: float = 0.005
    max_delay_sec: float = 0.25
    multiplier: float = 2.0
    jitter: bool = True
    rng: Callable[[], float] = field(default=random.random, compare=False)

    def ceiling(self, attempt: int) -> float:
        """The capped exponential bound for retry number ``attempt``."""
        return min(self.max_delay_sec,
                   self.base_delay_sec * (self.multiplier ** attempt))

    def delay(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (0-based)."""
        bound = self.ceiling(attempt)
        if not self.jitter:
            return bound
        return self.rng() * bound


@dataclass
class PoolStats:
    """Pool effectiveness and retry counters."""

    created: int = 0
    reused: int = 0
    overflow_closed: int = 0
    overload_retries: int = 0
    connect_retries: int = 0
    broken: int = 0


class ConnectionPool:
    """Thread-safe pool of :class:`ClientConnection` with retry-on-shed."""

    def __init__(self, host: str, port: int, size: int = 4,
                 retry: RetryPolicy | None = None,
                 connect_timeout_sec: float = 5.0,
                 request_timeout_sec: float = 60.0) -> None:
        if size < 1:
            raise ValueError("pool size must be >= 1")
        self.host = host
        self.port = port
        self.size = size
        self.retry = retry or RetryPolicy()
        self.connect_timeout_sec = connect_timeout_sec
        self.request_timeout_sec = request_timeout_sec
        self.stats = PoolStats()
        self._lock = threading.Lock()
        self._free: list[ClientConnection] = []
        self._closed = False

    # -- leasing -------------------------------------------------------------

    def acquire(self) -> ClientConnection:
        """Lease a connection (reuses an idle one, else dials a new one).

        Connect failures back off and retry per the policy, so a client
        racing a still-booting server converges instead of failing.
        """
        with self._lock:
            if self._closed:
                raise ConnectionError("pool is closed")
            if self._free:
                self.stats.reused += 1
                return self._free.pop()
        last_error: Exception | None = None
        for attempt in range(self.retry.max_attempts):
            try:
                conn = ClientConnection(
                    self.host, self.port,
                    connect_timeout_sec=self.connect_timeout_sec,
                    request_timeout_sec=self.request_timeout_sec).connect()
                with self._lock:
                    self.stats.created += 1
                return conn
            except (OSError, ConnectionError) as exc:
                last_error = exc
                with self._lock:
                    self.stats.connect_retries += 1
                time.sleep(self.retry.delay(attempt))
        raise ConnectionError(
            f"could not connect to {self.host}:{self.port} after "
            f"{self.retry.max_attempts} attempts: {last_error}")

    def release(self, conn: ClientConnection) -> None:
        """Return a leased connection (broken ones are discarded)."""
        if not conn.connected:
            with self._lock:
                self.stats.broken += 1
            return
        with self._lock:
            if not self._closed and len(self._free) < self.size:
                self._free.append(conn)
                return
            self.stats.overflow_closed += 1
        conn.close()

    # -- calling -------------------------------------------------------------

    def request(self, conn: ClientConnection, command: Command,
                *args: object) -> object:
        """One command on a *leased* connection, retrying only sheds.

        ``OVERLOADED`` means the server rejected the command before
        executing it, so resending after backoff is always safe — even for
        non-idempotent commands inside a transaction.
        """
        for attempt in range(self.retry.max_attempts):
            try:
                return conn.request(command, *args)
            except OverloadedError:
                with self._lock:
                    self.stats.overload_retries += 1
                if attempt == self.retry.max_attempts - 1:
                    raise
                time.sleep(self.retry.delay(attempt))
        raise AssertionError("unreachable")

    def call(self, command: Command, *args: object) -> object:
        """Lease, run one command with retry, release."""
        conn = self.acquire()
        try:
            return self.request(conn, command, *args)
        finally:
            self.release(conn)

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Close every idle connection and refuse new leases."""
        with self._lock:
            self._closed = True
            free, self._free = self._free, []
        for conn in free:
            conn.close()

    def __enter__(self) -> "ConnectionPool":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
