"""Binary codecs shared by the page formats.

Tuple IDs follow the PostgreSQL shape the prototype used: a 32-bit block
(page) number plus a 16-bit offset — 6 bytes on disk.  Version records carry
the on-tuple information of the SIAS design: creation timestamp, VID,
predecessor TID and flags; note there is deliberately **no invalidation
timestamp field** — invalidation is implicit in the successor's existence.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.common.errors import PageCorruptError

#: ``(block, offset)`` packed like a PostgreSQL ItemPointer: 6 bytes.
TID_STRUCT = struct.Struct("<IH")
TID_SIZE = TID_STRUCT.size

#: The null TID (no predecessor / unset slot).
NULL_TID_BYTES = b"\xff\xff\xff\xff\xff\xff"


@dataclass(frozen=True, order=True)
class Tid:
    """Physical tuple-version address: page number + slot within the page."""

    page_no: int
    slot: int

    def pack(self) -> bytes:
        """Encode as 6 bytes (PostgreSQL ItemPointer shape)."""
        return TID_STRUCT.pack(self.page_no, self.slot)

    @staticmethod
    def unpack(data: bytes) -> "Tid | None":
        """Decode 6 bytes; the all-ones pattern decodes to ``None``."""
        if data == NULL_TID_BYTES:
            return None
        page_no, slot = TID_STRUCT.unpack(data)
        return Tid(page_no, slot)


def pack_tid(tid: Tid | None) -> bytes:
    """Encode an optional TID (None becomes the null pattern)."""
    return NULL_TID_BYTES if tid is None else tid.pack()


# --- version record (SIAS-V on-tuple information) ----------------------------

#: Fixed version-record header: create_ts(8) vid(8) pred(6) flags(1) len(2).
_VERSION_HEADER = struct.Struct("<qq6sBH")
VERSION_HEADER_SIZE = _VERSION_HEADER.size

#: Public alias for zero-copy decoders that unpack headers in place.
VERSION_HEADER_STRUCT = _VERSION_HEADER

#: Flag bit: this version is a deletion tombstone.
FLAG_TOMBSTONE = 0x01


@dataclass(frozen=True)
class VersionRecord:
    """One tuple version as stored by SIAS-V.

    ``create_ts`` is the creating transaction's ID; ``vid`` is the data
    item's virtual ID (identical across all of its versions); ``pred`` points
    to the physical location of the predecessor version (None for the first
    version); ``tombstone`` marks a delete marker; ``payload`` is the encoded
    row.  There is no invalidation timestamp: the successor's ``create_ts``
    *is* this record's logical invalidation timestamp.
    """

    create_ts: int
    vid: int
    pred: Tid | None
    tombstone: bool
    payload: bytes

    @property
    def size(self) -> int:
        """On-disk footprint of this record in NSM layout."""
        return VERSION_HEADER_SIZE + len(self.payload)

    def pack(self) -> bytes:
        """Encode header + payload."""
        flags = FLAG_TOMBSTONE if self.tombstone else 0
        header = _VERSION_HEADER.pack(self.create_ts, self.vid,
                                      pack_tid(self.pred), flags,
                                      len(self.payload))
        return header + self.payload

    @staticmethod
    def unpack(data: bytes | memoryview,
               offset: int = 0) -> tuple["VersionRecord", int]:
        """Decode one record at ``offset``; returns ``(record, next_offset)``.

        Zero-copy: the header is decoded in place with ``unpack_from`` and
        only the payload is materialised (records outlive the page buffer).
        """
        end = offset + VERSION_HEADER_SIZE
        if end > len(data):
            raise PageCorruptError("version header extends past page end")
        create_ts, vid, pred_raw, flags, plen = _VERSION_HEADER.unpack_from(
            data, offset)
        if end + plen > len(data):
            raise PageCorruptError("version payload extends past page end")
        payload = bytes(data[end:end + plen])
        record = VersionRecord(
            create_ts=create_ts,
            vid=vid,
            pred=Tid.unpack(pred_raw),
            tombstone=bool(flags & FLAG_TOMBSTONE),
            payload=payload,
        )
        return record, end + plen


# --- heap tuple (baseline SI on-tuple information) -----------------------------

#: Heap tuple header: xmin(8) xmax(8) flags(1) len(2).
_HEAP_HEADER = struct.Struct("<qqBH")
HEAP_HEADER_SIZE = _HEAP_HEADER.size

#: xmax value meaning "not invalidated".
XMAX_INFINITY = -1


@dataclass(frozen=True)
class HeapTuple:
    """One tuple version as stored by the classical SI baseline.

    Carries **both** timestamps on the tuple: ``xmin`` (creation) and
    ``xmax`` (invalidation, :data:`XMAX_INFINITY` while live).  Invalidation
    is an in-place update of ``xmax`` — the small write the paper blames for
    flash write amplification.
    """

    xmin: int
    xmax: int
    tombstone: bool
    payload: bytes

    @property
    def size(self) -> int:
        """On-disk footprint of this tuple."""
        return HEAP_HEADER_SIZE + len(self.payload)

    @property
    def invalidated(self) -> bool:
        """True once a later transaction set ``xmax``."""
        return self.xmax != XMAX_INFINITY

    def with_xmax(self, xmax: int) -> "HeapTuple":
        """Copy with the invalidation timestamp set (the in-place update)."""
        return HeapTuple(self.xmin, xmax, self.tombstone, self.payload)

    def pack(self) -> bytes:
        """Encode header + payload."""
        flags = FLAG_TOMBSTONE if self.tombstone else 0
        header = _HEAP_HEADER.pack(self.xmin, self.xmax, flags,
                                   len(self.payload))
        return header + self.payload

    @staticmethod
    def unpack(data: bytes | memoryview,
               offset: int = 0) -> tuple["HeapTuple", int]:
        """Decode one tuple at ``offset``; returns ``(tuple, next_offset)``."""
        end = offset + HEAP_HEADER_SIZE
        if end > len(data):
            raise PageCorruptError("heap header extends past page end")
        xmin, xmax, flags, plen = _HEAP_HEADER.unpack_from(data, offset)
        if end + plen > len(data):
            raise PageCorruptError("heap payload extends past page end")
        payload = bytes(data[end:end + plen])
        return HeapTuple(xmin, xmax, bool(flags & FLAG_TOMBSTONE),
                         payload), end + plen
