"""Slotted heap page — the classical SI baseline's storage unit.

A PostgreSQL-style page: a slot directory grows from the front, tuple bodies
from the back.  Crucially for the paper's argument, the page is **mutable in
place**: :meth:`SlottedHeapPage.set_xmax` overwrites a live tuple's
invalidation timestamp — a 32/64-bit change that nevertheless dirties the
whole 8 KiB page and forces a full page program (plus eventual erase) on
flash.
"""

from __future__ import annotations

import struct

from repro.common import units
from repro.common.errors import PageFullError, SlotError
from repro.pages.base import Page, PageKind
from repro.pages.layout import HEAP_HEADER_SIZE, HeapTuple

_SLOT = struct.Struct("<H")  # per-slot: offset into the payload (0 = dead)
_COUNT = struct.Struct("<H")


class SlottedHeapPage(Page):
    """Mutable slotted page holding :class:`HeapTuple` records."""

    kind = PageKind.HEAP

    def __init__(self, page_no: int,
                 page_size: int = units.DB_PAGE_SIZE) -> None:
        super().__init__(page_no, page_size)
        self._tuples: list[HeapTuple | None] = []

    # -- space accounting --------------------------------------------------------

    @property
    def slot_count(self) -> int:
        """Number of slots (live + dead) in the directory."""
        return len(self._tuples)

    def live_slots(self) -> list[int]:
        """Slot numbers that still hold a tuple."""
        return [i for i, t in enumerate(self._tuples) if t is not None]

    @property
    def used_bytes(self) -> int:
        """Payload bytes consumed by directory + live tuple bodies."""
        body = sum(t.size for t in self._tuples if t is not None)
        return _COUNT.size + _SLOT.size * len(self._tuples) + body

    def free_bytes(self) -> int:
        """Payload bytes still available for one more insert."""
        return self.capacity - self.used_bytes

    def fits(self, tuple_: HeapTuple) -> bool:
        """Whether one more tuple (plus its slot) fits."""
        return tuple_.size + _SLOT.size <= self.free_bytes()

    def fits_bytes(self, nbytes: int) -> bool:
        """Whether ``nbytes`` of combined slot+body space is available."""
        return nbytes <= self.free_bytes()

    # -- mutation ------------------------------------------------------------------

    def insert(self, tuple_: HeapTuple) -> int:
        """Insert a tuple; returns its slot number."""
        if not self.fits(tuple_):
            raise PageFullError(
                f"heap page {self.page_no}: no room for {tuple_.size} B")
        self._tuples.append(tuple_)
        return len(self._tuples) - 1

    def read(self, slot: int) -> HeapTuple:
        """Return the tuple in ``slot`` (raises on dead/invalid slots)."""
        tuple_ = self._slot(slot)
        if tuple_ is None:
            raise SlotError(f"heap page {self.page_no}: slot {slot} is dead")
        return tuple_

    def set_xmax(self, slot: int, xmax: int) -> None:
        """In-place invalidation: overwrite the tuple's xmax.

        This is the exact operation SIAS-V eliminates — a tiny in-place
        update that dirties the whole page.
        """
        self._tuples[self._check(slot)] = self.read(slot).with_xmax(xmax)

    def kill(self, slot: int) -> None:
        """Remove a dead tuple's body (VACUUM); the slot stays as a stub."""
        self._check(slot)
        if self._tuples[slot] is None:
            raise SlotError(
                f"heap page {self.page_no}: slot {slot} already dead")
        self._tuples[slot] = None

    # -- helpers --------------------------------------------------------------------

    def _check(self, slot: int) -> int:
        if not 0 <= slot < len(self._tuples):
            raise SlotError(
                f"heap page {self.page_no}: slot {slot} out of range "
                f"[0, {len(self._tuples)})")
        return slot

    def _slot(self, slot: int) -> HeapTuple | None:
        return self._tuples[self._check(slot)]

    def tuples(self) -> list[tuple[int, HeapTuple]]:
        """All live ``(slot, tuple)`` pairs in slot order."""
        return [(i, t) for i, t in enumerate(self._tuples) if t is not None]

    # -- serialisation ----------------------------------------------------------------

    def payload_bytes(self) -> bytes:
        out = [_COUNT.pack(len(self._tuples))]
        bodies: list[bytes] = []
        offset = _COUNT.size + _SLOT.size * len(self._tuples)
        for tuple_ in self._tuples:
            if tuple_ is None:
                out.append(_SLOT.pack(0))
            else:
                body = tuple_.pack()
                out.append(_SLOT.pack(offset))
                bodies.append(body)
                offset += len(body)
        out.extend(bodies)
        return b"".join(out)

    @classmethod
    def from_payload(cls, page_no: int, payload: bytes,
                     page_size: int) -> "SlottedHeapPage":
        page = cls(page_no, page_size)
        (count,) = _COUNT.unpack_from(payload, 0)
        for i in range(count):
            (offset,) = _SLOT.unpack_from(payload, _COUNT.size + i * _SLOT.size)
            if offset == 0:
                page._tuples.append(None)
            else:
                tuple_, _end = HeapTuple.unpack(payload, offset)
                page._tuples.append(tuple_)
        return page

    def min_tuple_size(self) -> int:
        """Smallest insert this page format can accept (for fill checks)."""
        return HEAP_HEADER_SIZE + _SLOT.size
