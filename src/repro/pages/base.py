"""Common page header, checksumming and (de)serialisation dispatch.

Every on-device page is exactly ``page_size`` bytes: a fixed header
(magic, kind, page number, payload length, CRC32 of the payload) followed by
the format-specific payload and zero padding.  ``Page.to_bytes`` /
``Page.from_bytes`` round-trip any concrete page class; the checksum catches
corruption (and, in tests, serialisation bugs).
"""

from __future__ import annotations

import struct
import zlib
from abc import ABC, abstractmethod
from enum import IntEnum

from repro.common import units
from repro.common.errors import PageCorruptError

_HEADER = struct.Struct("<HBxIII")  # magic, kind, page_no, payload_len, crc32
PAGE_HEADER_SIZE = _HEADER.size
_MAGIC = 0x51A5  # "SIAS"


class PageKind(IntEnum):
    """Discriminator stored in every page header."""

    HEAP = 1
    APPEND_NSM = 2
    APPEND_VECTOR = 3
    VIDMAP = 4
    META = 5


class Page(ABC):
    """Base class for all page formats."""

    kind: PageKind

    def __init__(self, page_no: int,
                 page_size: int = units.DB_PAGE_SIZE) -> None:
        self.page_no = page_no
        self.page_size = page_size

    @property
    def capacity(self) -> int:
        """Payload bytes available after the common header."""
        return self.page_size - PAGE_HEADER_SIZE

    @abstractmethod
    def payload_bytes(self) -> bytes:
        """Serialise the format-specific payload (≤ :attr:`capacity`)."""

    @classmethod
    @abstractmethod
    def from_payload(cls, page_no: int, payload: bytes,
                     page_size: int) -> "Page":
        """Reconstruct a page from its payload bytes."""

    def to_bytes(self) -> bytes:
        """Serialise to exactly ``page_size`` bytes with header + checksum.

        The CRC covers the whole body (payload *and* zero padding), like
        PostgreSQL's page checksums: a flipped bit anywhere outside the
        header is detected on read.
        """
        payload = self.payload_bytes()
        if len(payload) > self.capacity:
            raise PageCorruptError(
                f"page {self.page_no}: payload {len(payload)} B exceeds "
                f"capacity {self.capacity} B")
        body = payload + b"\x00" * (self.capacity - len(payload))
        header = _HEADER.pack(_MAGIC, int(self.kind), self.page_no,
                              len(payload), zlib.crc32(body))
        return header + body

    @staticmethod
    def peek_kind(data: bytes) -> PageKind:
        """Read the page kind without full deserialisation."""
        magic, kind, _page_no, _plen, _crc = _HEADER.unpack_from(data)
        if magic != _MAGIC:
            raise PageCorruptError(f"bad page magic 0x{magic:04x}")
        return PageKind(kind)

    @staticmethod
    def from_bytes(data: bytes) -> "Page":
        """Deserialise any page, dispatching on the header's kind field.

        Zero-copy: the payload is handed to the format decoder as a
        ``memoryview`` slice of ``data`` — append pages decode it lazily, so
        a visibility-only scan never materialises payload bytes.  ``data``
        must therefore not be mutated after the call (device reads return
        immutable ``bytes``, so this holds on every read path).
        """
        # Imported here to avoid a circular import between the page formats
        # and this base module.
        from repro.pages.append_page import AppendPage
        from repro.pages.slotted import SlottedHeapPage
        from repro.pages.vidmap_page import VidMapPage

        page_size = len(data)
        magic, kind, page_no, plen, crc = _HEADER.unpack_from(data)
        if magic != _MAGIC:
            raise PageCorruptError(f"bad page magic 0x{magic:04x}")
        body = memoryview(data)[PAGE_HEADER_SIZE:]
        if zlib.crc32(body) != crc:
            raise PageCorruptError(f"page {page_no}: checksum mismatch")
        payload = body[:plen]
        kind_enum = PageKind(kind)
        if kind_enum is PageKind.HEAP:
            return SlottedHeapPage.from_payload(page_no, payload, page_size)
        if kind_enum in (PageKind.APPEND_NSM, PageKind.APPEND_VECTOR):
            return AppendPage.from_payload_kind(page_no, payload, page_size,
                                                kind_enum)
        if kind_enum is PageKind.VIDMAP:
            return VidMapPage.from_payload(page_no, payload, page_size)
        raise PageCorruptError(f"page {page_no}: unknown kind {kind}")
