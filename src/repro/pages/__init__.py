"""Page formats: slotted heap (SI), append pages (SIAS-V), VIDmap buckets."""

from repro.pages.append_page import VECTOR_META_SIZE, AppendPage
from repro.pages.base import PAGE_HEADER_SIZE, Page, PageKind
from repro.pages.layout import (
    HEAP_HEADER_SIZE,
    TID_SIZE,
    VERSION_HEADER_SIZE,
    XMAX_INFINITY,
    HeapTuple,
    Tid,
    VersionRecord,
)
from repro.pages.slotted import SlottedHeapPage
from repro.pages.vidmap_page import DEFAULT_SLOTS_PER_BUCKET, VidMapPage

__all__ = [
    "AppendPage",
    "DEFAULT_SLOTS_PER_BUCKET",
    "HEAP_HEADER_SIZE",
    "HeapTuple",
    "PAGE_HEADER_SIZE",
    "Page",
    "PageKind",
    "SlottedHeapPage",
    "TID_SIZE",
    "Tid",
    "VECTOR_META_SIZE",
    "VERSION_HEADER_SIZE",
    "VersionRecord",
    "VidMapPage",
    "XMAX_INFINITY",
]
