"""VIDmap bucket page: a fixed vector of TID slots.

The VIDmap maps each data item's VID to the TID of its newest version (the
*entrypoint*).  Because VIDs are assigned sequentially, the map is a dense
vector chopped into page-sized buckets: bucket number and slot position are
pure arithmetic — ``bucket = VID // slots_per_bucket`` and
``slot = VID % slots_per_bucket`` — so lookups are O(1) with no overflow
chains, and VID-range scans walk buckets sequentially.

The prototype configuration stores 1024 six-byte TIDs per 8 KiB bucket
(the page could hold 1365; capping at a power of two keeps the position
arithmetic to shifts/masks, exactly as the SIAS prototype chose).
"""

from __future__ import annotations

import struct

from repro.common import units
from repro.common.errors import SlotError
from repro.pages.base import Page, PageKind
from repro.pages.layout import (
    NULL_TID_BYTES,
    TID_SIZE,
    TID_STRUCT,
    Tid,
    pack_tid,
)

_HEADER = struct.Struct("<H")  # slots per bucket

#: Prototype default: 1024 TIDs per 8 KiB bucket.
DEFAULT_SLOTS_PER_BUCKET = 1024


class VidMapPage(Page):
    """One bucket of the VIDmap vector."""

    kind = PageKind.VIDMAP

    def __init__(self, page_no: int,
                 slots_per_bucket: int = DEFAULT_SLOTS_PER_BUCKET,
                 page_size: int = units.DB_PAGE_SIZE) -> None:
        super().__init__(page_no, page_size)
        needed = _HEADER.size + slots_per_bucket * TID_SIZE
        if needed > self.capacity:
            raise SlotError(
                f"{slots_per_bucket} TID slots need {needed} B, bucket "
                f"capacity is {self.capacity} B")
        self.slots_per_bucket = slots_per_bucket
        self._slots: list[Tid | None] = [None] * slots_per_bucket
        self._items: list[tuple[int, Tid]] | None = None

    def get(self, slot: int) -> Tid | None:
        """Entrypoint TID stored in ``slot`` (None if unset)."""
        return self._slots[self._check(slot)]

    def set(self, slot: int, tid: Tid | None) -> None:
        """Overwrite ``slot`` — the O(1) entrypoint update of SIAS-V."""
        self._slots[self._check(slot)] = tid
        self._items = None

    def occupied(self) -> int:
        """Number of slots holding a TID."""
        return sum(1 for t in self._slots if t is not None)

    def items(self) -> list[tuple[int, Tid]]:
        """Non-empty ``(slot, tid)`` pairs in one pass (the scan path:
        no per-slot bounds-checked ``get`` calls).  Cached until the next
        :meth:`set`; callers must not mutate the returned list."""
        items = self._items
        if items is None:
            items = self._items = [
                (slot, tid) for slot, tid in enumerate(self._slots)
                if tid is not None]
        return items

    def _check(self, slot: int) -> int:
        if not 0 <= slot < self.slots_per_bucket:
            raise SlotError(
                f"VIDmap bucket {self.page_no}: slot {slot} out of range "
                f"[0, {self.slots_per_bucket})")
        return slot

    # -- serialisation ---------------------------------------------------------

    def payload_bytes(self) -> bytes:
        parts = [_HEADER.pack(self.slots_per_bucket)]
        parts.extend(pack_tid(t) for t in self._slots)
        return b"".join(parts)

    @classmethod
    def from_payload(cls, page_no: int, payload: bytes | memoryview,
                     page_size: int) -> "VidMapPage":
        (slots,) = _HEADER.unpack_from(payload, 0)
        page = cls(page_no, slots, page_size)
        base = _HEADER.size
        # one batched pass over the TID vector instead of per-slot slicing
        view = memoryview(payload)[base:base + slots * TID_SIZE]
        null_pair = TID_STRUCT.unpack(NULL_TID_BYTES)
        page._slots = [
            None if pair == null_pair else Tid(*pair)
            for pair in TID_STRUCT.iter_unpack(view)
        ]
        return page
