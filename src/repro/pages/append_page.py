"""Append page — SIAS-V's storage unit, in NSM or column-vector layout.

An append page collects freshly created tuple versions in memory and is
written to the device **once**, when its fill threshold is reached (or a
checkpoint forces it out).  After that it is logically immutable: SIAS-V
never updates a flushed page in place; space is reclaimed only by whole-page
garbage collection.

Two physical layouts are supported (the "V" of SIAS-V):

* ``NSM`` — whole version records packed contiguously, like a row store.
* ``VECTOR`` — the records of the page decomposed into per-field column
  vectors (PAX-style mini-columns): one vector each for creation timestamps,
  VIDs, predecessor TIDs and flags, then a payload heap.  A visibility check
  over the page touches only the fixed-width metadata vectors —
  :meth:`AppendPage.meta_scan_bytes` quantifies the difference, which the
  layout-ablation experiment (A1) measures.

Both layouts hold identical logical content; ``read``/``read_meta`` are
layout-independent.

Decoding is **lazy and zero-copy**: :meth:`AppendPage.from_payload_kind`
keeps a ``memoryview`` over the sealed payload and decodes individual
records only when they are first read.  ``read_meta`` unpacks just the
fixed-width visibility fields in place, so a visibility-only chain walk
over a sealed page never materialises payload bytes.  Sealed pages are
immutable, so the view stays authoritative; an ``append`` to a decoded page
(never done by the engine, but allowed) materialises every record first.
"""

from __future__ import annotations

import struct

from repro.common import units
from repro.common.config import PageLayout
from repro.common.errors import PageCorruptError, PageFullError, SlotError
from repro.pages.base import Page, PageKind
from repro.pages.layout import (
    VERSION_HEADER_STRUCT,
    VERSION_HEADER_SIZE,
    FLAG_TOMBSTONE,
    Tid,
    VersionRecord,
    pack_tid,
)

_COUNT = struct.Struct("<H")
_META = struct.Struct("<qq6sB")  # create_ts, vid, pred, flags
_OFFSET = struct.Struct("<HH")   # payload offset, payload length
_PLEN = struct.Struct("<H")      # trailing payload-length header field

#: Per-record cost in the VECTOR layout's metadata vectors.
VECTOR_META_SIZE = _META.size + _OFFSET.size


class AppendPage(Page):
    """Append-only page of :class:`VersionRecord` entries."""

    def __init__(self, page_no: int, layout: PageLayout,
                 page_size: int = units.DB_PAGE_SIZE) -> None:
        super().__init__(page_no, page_size)
        self.layout = layout
        self._records: list[VersionRecord | None] = []
        self._used = _COUNT.size
        #: sealed payload bytes (zero-copy lazy decode); None for open pages
        self._view: memoryview | None = None
        #: NSM: record start offsets within the sealed payload (built lazily)
        self._nsm_offsets: list[int] | None = None
        #: VECTOR: precomputed vector base offsets
        self._offsets_base = 0
        self._heap_base = 0
        #: VECTOR: cached metadata columns / payload extents / tombstone
        #: bitmap (vectorized scan)
        self._meta_columns: tuple[list[int], list[int], list[bytes],
                                  list[int]] | None = None
        self._extents: list[tuple[int, int]] | None = None
        self._tomb_bitmap: int | None = None
        self._column_cache: dict[tuple[int, str], list] | None = None

    @property
    def kind(self) -> PageKind:  # type: ignore[override]
        """Serialisation discriminator depends on the layout."""
        if self.layout is PageLayout.NSM:
            return PageKind.APPEND_NSM
        return PageKind.APPEND_VECTOR

    # -- space accounting -----------------------------------------------------

    def _record_cost(self, record: VersionRecord) -> int:
        if self.layout is PageLayout.NSM:
            return record.size
        return VECTOR_META_SIZE + len(record.payload)

    @property
    def record_count(self) -> int:
        """Number of versions appended so far."""
        return len(self._records)

    @property
    def used_bytes(self) -> int:
        """Payload bytes consumed so far."""
        return self._used

    def free_bytes(self) -> int:
        """Payload bytes still available."""
        return self.capacity - self._used

    def fill_degree(self) -> float:
        """Fraction of the payload capacity in use (drives flush policy)."""
        return self._used / self.capacity

    def fits(self, record: VersionRecord) -> bool:
        """Whether ``record`` still fits on this page."""
        return self._record_cost(record) <= self.free_bytes()

    # -- append & read -----------------------------------------------------------

    def append(self, record: VersionRecord) -> int:
        """Append one version; returns its slot number."""
        if not self.fits(record):
            raise PageFullError(
                f"append page {self.page_no}: no room for "
                f"{self._record_cost(record)} B")
        if self._view is not None:
            # decoded sealed page diverges from its byte image: materialise
            # every record and drop the view before mutating
            self._materialise()
            self._view = None
            self._nsm_offsets = None
        self._meta_columns = None
        self._extents = None
        self._tomb_bitmap = None
        self._column_cache = None
        self._records.append(record)
        self._used += self._record_cost(record)
        return len(self._records) - 1

    def read(self, slot: int) -> VersionRecord:
        """Full version record in ``slot``."""
        record = self._records[self._check(slot)]
        if record is None:
            record = self._decode(slot)
            self._records[slot] = record
        return record

    def read_meta(self, slot: int) -> tuple[int, int, Tid | None, bool]:
        """Visibility metadata only: ``(create_ts, vid, pred, tombstone)``.

        In the VECTOR layout this models touching only the metadata vectors;
        on a lazily-decoded page the payload bytes are never materialised.
        """
        record = self._records[self._check(slot)]
        if record is not None:
            return record.create_ts, record.vid, record.pred, record.tombstone
        view = self._view
        assert view is not None
        if self.layout is PageLayout.VECTOR:
            create_ts, vid, pred_raw, flags = _META.unpack_from(
                view, _COUNT.size + slot * _META.size)
        else:
            create_ts, vid, pred_raw, flags, _plen = \
                VERSION_HEADER_STRUCT.unpack_from(view,
                                                  self._nsm_offset(slot))
        return (create_ts, vid, Tid.unpack(pred_raw),
                bool(flags & FLAG_TOMBSTONE))

    def records(self) -> list[tuple[int, VersionRecord]]:
        """All ``(slot, record)`` pairs in append order."""
        self._materialise()
        return list(enumerate(self._records))  # type: ignore[arg-type]

    def _check(self, slot: int) -> int:
        if not 0 <= slot < len(self._records):
            raise SlotError(
                f"append page {self.page_no}: slot {slot} out of range "
                f"[0, {len(self._records)})")
        return slot

    # -- vectorized (batched) access -----------------------------------------------

    def meta_columns(self) -> tuple[list[int], list[int], list[bytes],
                                    list[int]] | None:
        """Whole-page metadata vectors ``(create_ts, vid, pred_raw, flags)``.

        The entry point of the vectorized scan: one ``iter_unpack`` pass
        over the page's fixed-width mini-columns (cached until the next
        append) instead of one ``read_meta`` call per slot.  Works both on
        lazily-decoded pages (straight off the memoryview) and on sealed
        pages whose in-memory object was published with resident records.
        Returns None for NSM pages, which keep the tuple-at-a-time path.
        """
        if self.layout is not PageLayout.VECTOR:
            return None
        columns = self._meta_columns
        if columns is None:
            ts_vec: list[int] = []
            vid_vec: list[int] = []
            pred_vec: list[bytes] = []
            flag_vec: list[int] = []
            if self._view is not None:
                for create_ts, vid, pred_raw, flags in _META.iter_unpack(
                        self._view[_COUNT.size:self._offsets_base]):
                    ts_vec.append(create_ts)
                    vid_vec.append(vid)
                    pred_vec.append(pred_raw)
                    flag_vec.append(flags)
            else:
                for record in self._records:
                    assert record is not None
                    ts_vec.append(record.create_ts)
                    vid_vec.append(record.vid)
                    pred_vec.append(pack_tid(record.pred))
                    flag_vec.append(FLAG_TOMBSTONE if record.tombstone
                                    else 0)
            columns = (ts_vec, vid_vec, pred_vec, flag_vec)
            self._meta_columns = columns
        return columns

    def _payload_extents(self) -> list[tuple[int, int]]:
        """VECTOR payload ``(offset, length)`` pairs, batch-decoded once."""
        extents = self._extents
        if extents is None:
            view = self._view
            assert view is not None
            extents = list(_OFFSET.iter_unpack(
                view[self._offsets_base:self._heap_base]))
            self._extents = extents
        return extents

    def tombstone_bitmap(self) -> int:
        """Bitmap with bit ``i`` set iff slot ``i`` is a tombstone.

        VECTOR only (like :meth:`meta_columns`); cached until the next
        append.  Usually 0 — deletes are rare relative to page size.
        """
        bitmap = self._tomb_bitmap
        if bitmap is None:
            meta = self.meta_columns()
            assert meta is not None
            bitmap = 0
            for slot, flags in enumerate(meta[3]):
                if flags & FLAG_TOMBSTONE:
                    bitmap |= 1 << slot
            self._tomb_bitmap = bitmap
        return bitmap

    def probe_column(self, offset: int,
                     st: struct.Struct) -> list[object | None] | None:
        """One fixed-offset field of *every* slot's payload, as a vector.

        The per-page pass behind predicate pushdown: one tight loop over
        the cached payload extents, unpacking ``st`` at ``offset`` within
        each payload straight off the sealed view — or over the resident
        records' payload bytes on a seal-published page.  Entries are None
        where the payload is too short.  Returns None on NSM pages, which
        keep the per-slot probe/decode path.  Extracted columns are cached
        (keyed by offset and format) until the next append, so repeated
        scans of a sealed page pay the pass once.
        """
        if self.layout is not PageLayout.VECTOR:
            return None
        cache = self._column_cache
        if cache is None:
            cache = self._column_cache = {}
        key = (offset, st.format)
        column = cache.get(key)
        if column is not None:
            return column
        end = offset + st.size
        unpack_from = st.unpack_from
        view = self._view
        if view is None:
            # seal-published object: every record is resident (same
            # invariant as meta_columns)
            column = [unpack_from(record.payload, offset)[0]
                      if end <= len(record.payload) else None
                      for record in self._records]
        else:
            heap_base = self._heap_base
            column = [unpack_from(view, heap_base + poff + offset)[0]
                      if end <= plen else None
                      for poff, plen in self._payload_extents()]
        cache[key] = column
        return column

    def probe_payload(self, slot: int, offset: int,
                      st: struct.Struct) -> object | None:
        """One fixed-width field out of a slot's payload, undecoded.

        The predicate-pushdown probe: unpacks ``st`` at byte ``offset``
        within the payload, straight off the sealed view (or the resident
        record's payload bytes) — no :class:`VersionRecord` and no row
        decode.  Returns None when the payload is too short for the
        probe; the caller then falls back to a full row decode.
        """
        record = self._records[self._check(slot)]
        if record is not None:
            payload = record.payload
            if offset + st.size > len(payload):
                return None
            return st.unpack_from(payload, offset)[0]
        start, plen = self._payload_start(slot)
        if offset + st.size > plen:
            return None
        return st.unpack_from(self._view, start + offset)[0]

    def payload_slice(self, slot: int) -> bytes:
        """A slot's payload bytes without materialising its record."""
        record = self._records[self._check(slot)]
        if record is not None:
            return record.payload
        start, plen = self._payload_start(slot)
        view = self._view
        assert view is not None
        return bytes(view[start:start + plen])

    def _payload_start(self, slot: int) -> tuple[int, int]:
        """(absolute payload start, payload length) on a lazy page."""
        view = self._view
        assert view is not None
        if self.layout is PageLayout.NSM:
            start = self._nsm_offset(slot) + VERSION_HEADER_SIZE
            (plen,) = _PLEN.unpack_from(view, start - _PLEN.size)
        else:
            poff, plen = self._payload_extents()[slot]
            start = self._heap_base + poff
        if start + plen > len(view):
            raise PageCorruptError(
                f"append page {self.page_no}: payload slice out of bounds")
        return start, plen

    # -- lazy decode internals ------------------------------------------------------

    def _init_sealed(self, view: memoryview, count: int) -> None:
        """Adopt a sealed payload for lazy decoding (from_payload_kind)."""
        self._view = view
        self._records = [None] * count
        self._used = len(view)  # payload length == used bytes, both layouts
        if self.layout is PageLayout.VECTOR:
            self._offsets_base = _COUNT.size + _META.size * count
            self._heap_base = self._offsets_base + _OFFSET.size * count
            if self._heap_base > len(view):
                raise PageCorruptError(
                    f"append page {self.page_no}: metadata vectors extend "
                    "past payload end")

    def _decode(self, slot: int) -> VersionRecord:
        view = self._view
        assert view is not None
        if self.layout is PageLayout.NSM:
            record, _next = VersionRecord.unpack(view,
                                                 self._nsm_offset(slot))
            return record
        create_ts, vid, pred_raw, flags = _META.unpack_from(
            view, _COUNT.size + slot * _META.size)
        poff, plen = _OFFSET.unpack_from(
            view, self._offsets_base + slot * _OFFSET.size)
        start = self._heap_base + poff
        if start + plen > len(view):
            raise PageCorruptError(
                f"append page {self.page_no}: payload slice out of bounds")
        return VersionRecord(
            create_ts=create_ts,
            vid=vid,
            pred=Tid.unpack(pred_raw),
            tombstone=bool(flags & FLAG_TOMBSTONE),
            payload=bytes(view[start:start + plen]),
        )

    def _nsm_offset(self, slot: int) -> int:
        """Record start offset in an NSM payload (index built on demand).

        One header-only walk over the page — payload bytes are skipped, not
        copied — then every later access is O(1).
        """
        offsets = self._nsm_offsets
        if offsets is None:
            view = self._view
            assert view is not None
            offsets = []
            offset = _COUNT.size
            for _ in range(len(self._records)):
                if offset + VERSION_HEADER_SIZE > len(view):
                    raise PageCorruptError(
                        f"append page {self.page_no}: version header "
                        "extends past payload end")
                offsets.append(offset)
                (plen,) = _PLEN.unpack_from(
                    view, offset + VERSION_HEADER_SIZE - _PLEN.size)
                offset += VERSION_HEADER_SIZE + plen
                if offset > len(view):
                    raise PageCorruptError(
                        f"append page {self.page_no}: version payload "
                        "extends past payload end")
            self._nsm_offsets = offsets
        return offsets[slot]

    def _materialise(self) -> None:
        """Decode every not-yet-decoded record (records()/append paths)."""
        if self._view is None:
            return
        if self.layout is PageLayout.VECTOR and None in self._records:
            # batch-decode the fixed-width vectors with iter_unpack
            view = self._view
            count = len(self._records)
            metas = _META.iter_unpack(view[_COUNT.size:self._offsets_base])
            offs = _OFFSET.iter_unpack(
                view[self._offsets_base:self._heap_base])
            heap_base = self._heap_base
            for slot, ((create_ts, vid, pred_raw, flags),
                       (poff, plen)) in enumerate(zip(metas, offs)):
                if self._records[slot] is not None:
                    continue
                start = heap_base + poff
                if start + plen > len(view):
                    raise PageCorruptError(
                        f"append page {self.page_no}: payload slice out "
                        "of bounds")
                self._records[slot] = VersionRecord(
                    create_ts=create_ts,
                    vid=vid,
                    pred=Tid.unpack(pred_raw),
                    tombstone=bool(flags & FLAG_TOMBSTONE),
                    payload=bytes(view[start:start + plen]),
                )
            assert count == len(self._records)
            return
        for slot, record in enumerate(self._records):
            if record is None:
                self._records[slot] = self._decode(slot)

    # -- layout-dependent scan cost ------------------------------------------------

    def meta_scan_bytes(self) -> int:
        """Bytes touched to visibility-check every record on the page.

        VECTOR reads just the metadata vectors; NSM must walk the full
        interleaved records (headers are adjacent to payloads), i.e. all
        used bytes.
        """
        if self.layout is PageLayout.VECTOR:
            return _COUNT.size + VECTOR_META_SIZE * len(self._records)
        return self._used

    # -- serialisation -----------------------------------------------------------------

    def payload_bytes(self) -> bytes:
        if self._view is not None:
            # sealed pages are immutable: the original image is authoritative
            return bytes(self._view)
        if self.layout is PageLayout.NSM:
            parts = [_COUNT.pack(len(self._records))]
            parts.extend(r.pack() for r in self._records)  # type: ignore[union-attr]
            return b"".join(parts)
        # VECTOR: meta vector | offset vector | payload heap
        parts = [_COUNT.pack(len(self._records))]
        for r in self._records:
            assert r is not None
            flags = FLAG_TOMBSTONE if r.tombstone else 0
            parts.append(_META.pack(r.create_ts, r.vid, pack_tid(r.pred),
                                    flags))
        heap_parts: list[bytes] = []
        offset = 0
        for r in self._records:
            assert r is not None
            parts.append(_OFFSET.pack(offset, len(r.payload)))
            heap_parts.append(r.payload)
            offset += len(r.payload)
        return b"".join(parts) + b"".join(heap_parts)

    @classmethod
    def from_payload(cls, page_no: int, payload: bytes,
                     page_size: int) -> "AppendPage":
        raise PageCorruptError(
            "append pages must be decoded via from_payload_kind")

    @classmethod
    def from_payload_kind(cls, page_no: int, payload: bytes | memoryview,
                          page_size: int, kind: PageKind) -> "AppendPage":
        """Decode an append page whose layout is given by the header kind.

        The payload is *adopted*, not parsed: records decode lazily over a
        ``memoryview`` on first access (see the module docstring).
        """
        layout = (PageLayout.NSM if kind is PageKind.APPEND_NSM
                  else PageLayout.VECTOR)
        page = cls(page_no, layout, page_size)
        (count,) = _COUNT.unpack_from(payload, 0)
        view = payload if isinstance(payload, memoryview) \
            else memoryview(payload)
        page._init_sealed(view, count)
        return page

    def min_record_size(self) -> int:
        """Smallest record cost (for capacity maths in tests)."""
        if self.layout is PageLayout.NSM:
            return VERSION_HEADER_SIZE
        return VECTOR_META_SIZE
