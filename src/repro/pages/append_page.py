"""Append page — SIAS-V's storage unit, in NSM or column-vector layout.

An append page collects freshly created tuple versions in memory and is
written to the device **once**, when its fill threshold is reached (or a
checkpoint forces it out).  After that it is logically immutable: SIAS-V
never updates a flushed page in place; space is reclaimed only by whole-page
garbage collection.

Two physical layouts are supported (the "V" of SIAS-V):

* ``NSM`` — whole version records packed contiguously, like a row store.
* ``VECTOR`` — the records of the page decomposed into per-field column
  vectors (PAX-style mini-columns): one vector each for creation timestamps,
  VIDs, predecessor TIDs and flags, then a payload heap.  A visibility check
  over the page touches only the fixed-width metadata vectors —
  :meth:`AppendPage.meta_scan_bytes` quantifies the difference, which the
  layout-ablation experiment (A1) measures.

Both layouts hold identical logical content; ``read``/``read_meta`` are
layout-independent.
"""

from __future__ import annotations

import struct

from repro.common import units
from repro.common.config import PageLayout
from repro.common.errors import PageCorruptError, PageFullError, SlotError
from repro.pages.base import Page, PageKind
from repro.pages.layout import (
    VERSION_HEADER_SIZE,
    FLAG_TOMBSTONE,
    Tid,
    VersionRecord,
    pack_tid,
)

_COUNT = struct.Struct("<H")
_META = struct.Struct("<qq6sB")  # create_ts, vid, pred, flags
_OFFSET = struct.Struct("<HH")   # payload offset, payload length

#: Per-record cost in the VECTOR layout's metadata vectors.
VECTOR_META_SIZE = _META.size + _OFFSET.size


class AppendPage(Page):
    """Append-only page of :class:`VersionRecord` entries."""

    def __init__(self, page_no: int, layout: PageLayout,
                 page_size: int = units.DB_PAGE_SIZE) -> None:
        super().__init__(page_no, page_size)
        self.layout = layout
        self._records: list[VersionRecord] = []
        self._used = _COUNT.size

    @property
    def kind(self) -> PageKind:  # type: ignore[override]
        """Serialisation discriminator depends on the layout."""
        if self.layout is PageLayout.NSM:
            return PageKind.APPEND_NSM
        return PageKind.APPEND_VECTOR

    # -- space accounting -----------------------------------------------------

    def _record_cost(self, record: VersionRecord) -> int:
        if self.layout is PageLayout.NSM:
            return record.size
        return VECTOR_META_SIZE + len(record.payload)

    @property
    def record_count(self) -> int:
        """Number of versions appended so far."""
        return len(self._records)

    @property
    def used_bytes(self) -> int:
        """Payload bytes consumed so far."""
        return self._used

    def free_bytes(self) -> int:
        """Payload bytes still available."""
        return self.capacity - self._used

    def fill_degree(self) -> float:
        """Fraction of the payload capacity in use (drives flush policy)."""
        return self._used / self.capacity

    def fits(self, record: VersionRecord) -> bool:
        """Whether ``record`` still fits on this page."""
        return self._record_cost(record) <= self.free_bytes()

    # -- append & read -----------------------------------------------------------

    def append(self, record: VersionRecord) -> int:
        """Append one version; returns its slot number."""
        if not self.fits(record):
            raise PageFullError(
                f"append page {self.page_no}: no room for "
                f"{self._record_cost(record)} B")
        self._records.append(record)
        self._used += self._record_cost(record)
        return len(self._records) - 1

    def read(self, slot: int) -> VersionRecord:
        """Full version record in ``slot``."""
        return self._records[self._check(slot)]

    def read_meta(self, slot: int) -> tuple[int, int, Tid | None, bool]:
        """Visibility metadata only: ``(create_ts, vid, pred, tombstone)``.

        In the VECTOR layout this models touching only the metadata vectors.
        """
        r = self._records[self._check(slot)]
        return r.create_ts, r.vid, r.pred, r.tombstone

    def records(self) -> list[tuple[int, VersionRecord]]:
        """All ``(slot, record)`` pairs in append order."""
        return list(enumerate(self._records))

    def _check(self, slot: int) -> int:
        if not 0 <= slot < len(self._records):
            raise SlotError(
                f"append page {self.page_no}: slot {slot} out of range "
                f"[0, {len(self._records)})")
        return slot

    # -- layout-dependent scan cost ------------------------------------------------

    def meta_scan_bytes(self) -> int:
        """Bytes touched to visibility-check every record on the page.

        VECTOR reads just the metadata vectors; NSM must walk the full
        interleaved records (headers are adjacent to payloads), i.e. all
        used bytes.
        """
        if self.layout is PageLayout.VECTOR:
            return _COUNT.size + VECTOR_META_SIZE * len(self._records)
        return self._used

    # -- serialisation -----------------------------------------------------------------

    def payload_bytes(self) -> bytes:
        if self.layout is PageLayout.NSM:
            parts = [_COUNT.pack(len(self._records))]
            parts.extend(r.pack() for r in self._records)
            return b"".join(parts)
        # VECTOR: meta vector | offset vector | payload heap
        parts = [_COUNT.pack(len(self._records))]
        for r in self._records:
            flags = FLAG_TOMBSTONE if r.tombstone else 0
            parts.append(_META.pack(r.create_ts, r.vid, pack_tid(r.pred),
                                    flags))
        heap_parts: list[bytes] = []
        offset = 0
        for r in self._records:
            parts.append(_OFFSET.pack(offset, len(r.payload)))
            heap_parts.append(r.payload)
            offset += len(r.payload)
        return b"".join(parts) + b"".join(heap_parts)

    @classmethod
    def from_payload(cls, page_no: int, payload: bytes,
                     page_size: int) -> "AppendPage":
        raise PageCorruptError(
            "append pages must be decoded via from_payload_kind")

    @classmethod
    def from_payload_kind(cls, page_no: int, payload: bytes, page_size: int,
                          kind: PageKind) -> "AppendPage":
        """Decode an append page whose layout is given by the header kind."""
        layout = (PageLayout.NSM if kind is PageKind.APPEND_NSM
                  else PageLayout.VECTOR)
        page = cls(page_no, layout, page_size)
        (count,) = _COUNT.unpack_from(payload, 0)
        if layout is PageLayout.NSM:
            offset = _COUNT.size
            for _ in range(count):
                record, offset = VersionRecord.unpack(payload, offset)
                page.append(record)
            return page
        meta_base = _COUNT.size
        offsets_base = meta_base + _META.size * count
        heap_base = offsets_base + _OFFSET.size * count
        for i in range(count):
            create_ts, vid, pred_raw, flags = _META.unpack_from(
                payload, meta_base + i * _META.size)
            poff, plen = _OFFSET.unpack_from(payload,
                                             offsets_base + i * _OFFSET.size)
            start = heap_base + poff
            if start + plen > len(payload):
                raise PageCorruptError(
                    f"append page {page_no}: payload slice out of bounds")
            record = VersionRecord(
                create_ts=create_ts,
                vid=vid,
                pred=Tid.unpack(pred_raw),
                tombstone=bool(flags & FLAG_TOMBSTONE),
                payload=bytes(payload[start:start + plen]),
            )
            page.append(record)
        return page

    def min_record_size(self) -> int:
        """Smallest record cost (for capacity maths in tests)."""
        if self.layout is PageLayout.NSM:
            return VERSION_HEADER_SIZE
        return VECTOR_META_SIZE
